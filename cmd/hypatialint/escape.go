package main

// The confinement check: //hypatia:confined as a machine-proven ownership
// contract, built on the points-to solver in pointsto.go.
//
// Annotating a type (or a struct field) //hypatia:confined asserts that
// every value of that type (or held in that field) is reachable from at
// most one goroutine at a time. The analysis proves it by tracking how each
// confined object can cross a goroutine boundary:
//
//   - A go statement hands the launched goroutine its arguments, receiver,
//     and closure captures. One launch is a legal ownership handoff; a
//     confined object reachable from two launches — or from a launch inside
//     a loop, where one value feeds many goroutines — escapes.
//   - A store rooted in a package-level variable publishes the object to
//     every goroutine; that is always a violation.
//   - A dynamic call the solver cannot resolve (interface method, plain
//     function value) may retain its arguments anywhere, so a confined
//     object flowing into one leaves the provable region — reported unless
//     every possible callee is a function value whose body was analyzed.
//
// The legal transfer points are built into the constraint generation, not
// checked here: channel send/receive and //hypatia:transfer calls cut the
// points-to flow (pointsto.go), so ownership handoffs through them never
// produce a reachability edge in the first place. TablePool.Empty and
// ForwardingTable.Release carry the annotation in internal/routing; calls
// through //hypatia:pure function types and interfaces are no-retention by
// their existing contract.
//
// What this check deliberately leaves to locksafety: access to the shared
// launcher-side state *after* a legal launch. Confinement proves the object
// graph reaches at most one goroutine; locksafety proves the fields both
// sides do share are guarded. The two compose — which is why a proven
// //hypatia:confined field is exempt from locksafety's lock demand.
//
// Findings are reported in the package that contains the go statement,
// global store, or dynamic call, keeping each package's findings a function
// of itself plus its dependencies (the fact-cache invariant). The solver
// runs once per lint target over its dependency cone; a confined value
// flowing from a target into a *dependency's* launch site is therefore
// reported when that dependency is linted, not here — consistently dropped
// from this target's findings, never double-reported.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const (
	confinedDirective = "//hypatia:confined"
	transferDirective = "//hypatia:transfer"
)

// confIndex is the module-wide set of confinement annotations.
type confIndex struct {
	// types maps //hypatia:confined type declarations.
	types map[*types.TypeName]bool
	// fields maps //hypatia:confined struct fields.
	fields map[*types.Var]bool
	// transfer maps //hypatia:transfer functions: ownership-transfer points
	// whose arguments are consumed and whose results are fresh.
	transfer map[*types.Func]bool
	// honored records directive comment positions that took effect, for the
	// misplaced-directive check.
	honored map[token.Pos]bool
	// pkgs marks the packages declaring at least one annotation, so cones
	// without any can skip the solver entirely.
	pkgs  map[*types.Package]bool
	count int
}

// directiveIn returns the comment of a doc group that is exactly the given
// directive (optionally followed by a rationale after a space), or nil.
func directiveIn(doc *ast.CommentGroup, directive string) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return c
		}
	}
	return nil
}

// collectConfinementDirectives indexes //hypatia:confined and
// //hypatia:transfer annotations across every loaded package.
func collectConfinementDirectives(all []*pkg) *confIndex {
	conf := &confIndex{
		types:    map[*types.TypeName]bool{},
		fields:   map[*types.Var]bool{},
		transfer: map[*types.Func]bool{},
		honored:  map[token.Pos]bool{},
		pkgs:     map[*types.Package]bool{},
	}
	for _, p := range all {
		for _, f := range p.files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if c := directiveIn(d.Doc, transferDirective); c != nil {
						if fn, ok := p.info.Defs[d.Name].(*types.Func); ok {
							conf.transfer[fn] = true
							conf.honored[c.Pos()] = true
							conf.pkgs[p.types] = true
							conf.count++
						}
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						c := directiveIn(ts.Doc, confinedDirective)
						if c == nil && len(d.Specs) == 1 {
							c = directiveIn(d.Doc, confinedDirective)
						}
						if c != nil {
							if tn, ok := p.info.Defs[ts.Name].(*types.TypeName); ok {
								conf.types[tn] = true
								conf.honored[c.Pos()] = true
								conf.pkgs[p.types] = true
								conf.count++
							}
						}
						conf.collectFieldDirectives(p, ts)
					}
				}
			}
		}
	}
	return conf
}

// collectFieldDirectives picks up //hypatia:confined on struct fields (doc
// comment or trailing comment), including fields of nested struct types.
func (conf *confIndex) collectFieldDirectives(p *pkg, ts *ast.TypeSpec) {
	ast.Inspect(ts.Type, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			c := directiveIn(fld.Doc, confinedDirective)
			if c == nil {
				c = directiveIn(fld.Comment, confinedDirective)
			}
			if c == nil {
				continue
			}
			for _, name := range fld.Names {
				if fv, ok := p.info.Defs[name].(*types.Var); ok {
					conf.fields[fv] = true
					conf.honored[c.Pos()] = true
					conf.pkgs[p.types] = true
					conf.count++
				}
			}
		}
		return true
	})
}

// confinedTypeName resolves t (through pointers and aliases) to a
// //hypatia:confined type declaration, or nil.
func confinedTypeName(t types.Type, conf *confIndex) *types.TypeName {
	if t == nil {
		return nil
	}
	if named, ok := types.Unalias(derefAll(t)).(*types.Named); ok {
		if conf.types[named.Obj()] {
			return named.Obj()
		}
	}
	return nil
}

// serializable renders the annotations declared in p for the fact cache.
func (conf *confIndex) serializable(p *pkg) map[string]string {
	out := map[string]string{}
	for tn := range conf.types {
		if tn.Pkg() == p.types {
			out["type "+tn.Name()] = "confined"
		}
	}
	for fv := range conf.fields {
		if fv.Pkg() == p.types {
			pos := p.fset.Position(fv.Pos())
			out[fmt.Sprintf("field %s at %s:%d", fv.Name(), shortFile(pos.Filename), pos.Line)] = "confined"
		}
	}
	for fn := range conf.transfer {
		if fn.Pkg() == p.types {
			name := fn.Name()
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if _, rn, ok := namedType(sig.Recv().Type()); ok {
					name = rn + "." + name
				}
			}
			out["func "+name] = "transfer"
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ---- the check ----

// checkConfinementPkgs runs the confinement proof for each lint target over
// its dependency cone. Targets whose cone declares no annotation skip the
// solver.
func checkConfinementPkgs(targets, all []*pkg, cg *callGraph, an *effectAnalysis, conf *confIndex, cfg config, rep *reporter) {
	if conf.count == 0 {
		return
	}
	byPath := map[string]*pkg{}
	for _, p := range all {
		byPath[p.path] = p
	}
	for _, p := range targets {
		cone := coneOf(p, byPath)
		annotated := false
		for _, q := range cone {
			if conf.pkgs[q.types] {
				annotated = true
				break
			}
		}
		if !annotated {
			continue
		}
		runConfinement(p, cone, cg, an, conf, cfg.module, rep)
	}
}

// coneOf returns p plus its transitive module-local imports, sorted by path
// so constraint generation is deterministic.
func coneOf(p *pkg, byPath map[string]*pkg) []*pkg {
	seen := map[*pkg]bool{}
	var visit func(q *pkg)
	visit = func(q *pkg) {
		if q == nil || seen[q] {
			return
		}
		seen[q] = true
		for _, imp := range q.types.Imports() {
			visit(byPath[imp.Path()])
		}
	}
	visit(p)
	cone := make([]*pkg, 0, len(seen))
	for q := range seen {
		cone = append(cone, q)
	}
	sort.Slice(cone, func(i, j int) bool { return cone[i].path < cone[j].path })
	return cone
}

// provEntry records how an object was first reached in one escape BFS.
type provEntry struct {
	parent ptObj
	slot   string
	root   bool // in the points-to set of a seed node directly
}

// reachFrom runs a breadth-first reachability sweep over the object graph
// from the given nodes. BFS order means the recorded provenance chains are
// shortest paths — the tightest escape explanation available.
func reachFrom(s *ptSolver, nodes []ptNode) ([]ptObj, map[ptObj]provEntry) {
	prov := map[ptObj]provEntry{}
	var order, queue []ptObj
	for _, n := range nodes {
		for _, o := range s.pts(n) {
			if _, ok := prov[o]; ok {
				continue
			}
			prov[o] = provEntry{root: true}
			order = append(order, o)
			queue = append(queue, o)
		}
	}
	for len(queue) > 0 {
		o := queue[0]
		queue = queue[1:]
		for _, name := range s.sortedSlots(o) {
			sn := s.objs[o].slots[name]
			for _, o2 := range s.pts(sn) {
				if _, ok := prov[o2]; ok {
					continue
				}
				prov[o2] = provEntry{parent: o, slot: name}
				order = append(order, o2)
				queue = append(queue, o2)
			}
		}
	}
	return order, prov
}

// markConfined classifies every object the solver knows about: objects of a
// //hypatia:confined type, and objects reachable through the points-to set
// of a //hypatia:confined field. The value is the subject suffix used in
// finding messages.
func markConfined(g *ptGen, conf *confIndex) map[ptObj]string {
	confined := map[ptObj]string{}
	for i := range g.s.objs {
		st := &g.s.objs[i]
		if st.kind == objOpaque || st.kind == objFunc || st.kind == objCell {
			continue
		}
		if tn := confinedTypeName(st.typ, conf); tn != nil {
			confined[ptObj(i)] = "its type " + tn.Name() + " is //hypatia:confined"
		}
	}
	for i := range g.s.objs {
		for _, name := range g.s.sortedSlots(ptObj(i)) {
			fv := g.s.objs[i].slotVar[name]
			if fv == nil || !conf.fields[fv] {
				continue
			}
			sn := g.s.objs[i].slots[name]
			for _, o2 := range g.s.pts(sn) {
				if _, ok := confined[o2]; !ok {
					confined[o2] = "it is held in //hypatia:confined field " + fv.Name()
				}
			}
		}
	}
	return confined
}

// objDesc renders one object for an escape path.
func objDesc(g *ptGen, o ptObj) string {
	st := &g.s.objs[o]
	if st.pos.IsValid() {
		return st.label + " at " + g.posOf(st.pos)
	}
	return st.label
}

// slotPhrase renders one edge of an escape path.
func slotPhrase(slot string) string {
	switch {
	case slot == "[]":
		return "an element"
	case slot == "*":
		return "the pointee"
	case slot == "recv":
		return "the bound receiver"
	case strings.HasPrefix(slot, "capture "):
		return "captured variable " + strings.TrimPrefix(slot, "capture ")
	default:
		return "field " + slot
	}
}

// renderPath renders the allocation→escape chain for one finding: the
// escape site, then each aliasing hop from the seed's points-to set down to
// the confined object.
func renderPath(g *ptGen, root string, prov map[ptObj]provEntry, obj ptObj) string {
	type hop struct {
		o    ptObj
		slot string
		root bool
	}
	var chain []hop
	for o := obj; ; {
		e, ok := prov[o]
		if !ok {
			break
		}
		chain = append(chain, hop{o: o, slot: e.slot, root: e.root})
		if e.root {
			break
		}
		o = e.parent
	}
	parts := []string{root}
	for i := len(chain) - 1; i >= 0; i-- {
		h := chain[i]
		if !h.root {
			parts = append(parts, slotPhrase(h.slot))
		}
		parts = append(parts, objDesc(g, h.o))
	}
	return strings.Join(parts, " → ")
}

const transferHint = "a //hypatia:confined value may be handed off only over a channel or through a //hypatia:transfer call"

// runConfinement solves one target's cone and reports every way a confined
// object escapes through a site in the target package.
func runConfinement(target *pkg, cone []*pkg, cg *callGraph, an *effectAnalysis, conf *confIndex, module string, rep *reporter) {
	g := genConstraints(cone, cg, an, conf, module)
	g.s.solve()
	confined := markConfined(g, conf)
	if len(confined) == 0 {
		return
	}
	// One finding per source position: a single go statement seeding several
	// confined objects reads as one violation, not a pile.
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, msg string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		rep.add(pos, checkConfinement, msg)
	}
	subject := func(o ptObj) string {
		return objDesc(g, o) + " (" + confined[o] + ")"
	}

	// Goroutine launches. Sorting by source position (never raw token.Pos:
	// the parallel loader parses files in nondeterministic order, so only
	// resolved positions are stable) fixes both the report order and the
	// "other launch" chosen for multi-launch messages.
	var seeds []ptSeed
	for _, sd := range g.seeds {
		if sd.p == target {
			seeds = append(seeds, sd)
		}
	}
	sort.SliceStable(seeds, func(i, j int) bool {
		return posLess(g.fset.Position(seeds[i].pos), g.fset.Position(seeds[j].pos))
	})
	type reachRes struct {
		order []ptObj
		prov  map[ptObj]provEntry
	}
	reaches := make([]reachRes, len(seeds))
	seedsOf := map[ptObj][]int{}
	for i, sd := range seeds {
		order, prov := reachFrom(g.s, sd.nodes)
		reaches[i] = reachRes{order, prov}
		for _, o := range order {
			if _, ok := confined[o]; ok {
				seedsOf[o] = append(seedsOf[o], i)
			}
		}
	}
	for i, sd := range seeds {
		for _, o := range reaches[i].order {
			if _, ok := confined[o]; !ok {
				continue
			}
			path := func() string {
				return renderPath(g, "go statement at "+g.posOf(sd.pos), reaches[i].prov, o)
			}
			if sd.inLoop {
				report(sd.pos, fmt.Sprintf(
					"confined value escapes: %s is captured by a goroutine launched inside a loop, so one value reaches many goroutines; escape path: %s (%s)",
					subject(o), path(), transferHint))
				break
			}
			if len(seedsOf[o]) > 1 {
				other := seedsOf[o][0]
				if other == i {
					other = seedsOf[o][1]
				}
				report(sd.pos, fmt.Sprintf(
					"confined value escapes: %s is reachable from a second goroutine (other launch at %s); escape path: %s (%s)",
					subject(o), g.posOf(seeds[other].pos), path(), transferHint))
				break
			}
			// Exactly one launch reaches it: the legal ownership handoff.
		}
	}

	// Publication through package-level variables: always a violation —
	// every goroutine can reach a global.
	var stores []ptGlobalStore
	for _, gs := range g.globalStores {
		if gs.p == target {
			stores = append(stores, gs)
		}
	}
	sort.SliceStable(stores, func(i, j int) bool {
		return posLess(g.fset.Position(stores[i].pos), g.fset.Position(stores[j].pos))
	})
	storeCovered := map[ptObj]bool{}
	for _, gs := range stores {
		order, prov := reachFrom(g.s, []ptNode{gs.node})
		for _, o := range order {
			if _, ok := confined[o]; !ok {
				continue
			}
			storeCovered[o] = true
			report(gs.pos, fmt.Sprintf(
				"confined value escapes: %s is published through package-level variable %s, making it reachable from every goroutine; escape path: %s",
				subject(o), gs.vname,
				renderPath(g, "store to package-level variable "+gs.vname+" at "+g.posOf(gs.pos), prov, o)))
		}
	}
	// Fallback sweep over the target's own globals, for exposure paths with
	// no single recorded store site (e.g. aliasing through initializers).
	var globals []*types.Var
	for _, v := range g.globals {
		if v.Pkg() == target.types {
			globals = append(globals, v)
		}
	}
	sort.SliceStable(globals, func(i, j int) bool {
		return posLess(g.fset.Position(globals[i].Pos()), g.fset.Position(globals[j].Pos()))
	})
	for _, v := range globals {
		n, ok := g.varNode[v]
		if !ok || n == ptNone {
			continue
		}
		order, prov := reachFrom(g.s, []ptNode{n})
		for _, o := range order {
			if _, ok := confined[o]; !ok || storeCovered[o] {
				continue
			}
			storeCovered[o] = true
			report(v.Pos(), fmt.Sprintf(
				"confined value escapes: %s is reachable from package-level variable %s; escape path: %s",
				subject(o), v.Name(),
				renderPath(g, "package-level variable "+v.Name(), prov, o)))
		}
	}

	// Dynamic calls: a confined object handed to a callee the solver cannot
	// see into loses its proof — unless every possible callee is a function
	// value whose body was analyzed (its own constraints already cover it).
	var dyns []ptDynCall
	for _, dc := range g.dynCalls {
		if dc.p == target {
			dyns = append(dyns, dc)
		}
	}
	sort.SliceStable(dyns, func(i, j int) bool {
		return posLess(g.fset.Position(dyns[i].pos), g.fset.Position(dyns[j].pos))
	})
	for _, dc := range dyns {
		if dc.fun != ptNone {
			pts := g.s.pts(dc.fun)
			allKnown := len(pts) > 0
			for _, o := range pts {
				if !g.s.objs[o].bodyKnown {
					allKnown = false
					break
				}
			}
			if allKnown {
				continue
			}
		}
		nodes := append([]ptNode(nil), dc.args...)
		if dc.fun != ptNone {
			nodes = append(nodes, dc.fun)
		}
		order, prov := reachFrom(g.s, nodes)
		for _, o := range order {
			if _, ok := confined[o]; !ok {
				continue
			}
			report(dc.pos, fmt.Sprintf(
				"confinement unprovable: %s flows into a %s the analysis cannot see into; escape path: %s (resolve the callee statically, or make the handoff explicit with a channel or a //hypatia:transfer call)",
				subject(o), dc.label,
				renderPath(g, dc.label+" at "+g.posOf(dc.pos), prov, o)))
			break
		}
	}
}

// posLess orders resolved source positions.
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
