package main

// The handlesafety check: flow-sensitive domain typing and arena-epoch
// staleness for the struct-of-arrays simulator core, over the annotations
// indexed in handles.go.
//
// Domain typing is a taint lattice in the unitsafety mold: every expression
// has an abstract handle value (a domain, or the set of enclosing-function
// parameters that taint it), propagated through assignments, arithmetic that
// provably preserves the handle (+/- a constant, conversions, slicing), and
// interprocedural summaries refined to fixpoint over the call graph. Every
// index expression whose base is an annotated array must then be PROVEN to
// carry the base's index domain: a known foreign domain is a cross-domain
// finding, and a value the lattice cannot type at all is a finding too —
// "cannot prove" is a failure here, unlike unitsafety's optimistic silence,
// because a wrong handle indexes real memory. Multiplication and modulo
// deliberately forget the domain, so flattened-index arithmetic
// (dev*qcap+head) must pass through an explicit trailing
// //hypatia:handle(D) coercion, which is both the proof obligation and the
// audit trail.
//
// Epoch staleness gives each tracked handle a stale bit: calling a
// //hypatia:epoch function (graph.Reset, CloneInto) or writing a
// //hypatia:epoch field (ring head advance) marks every live handle of the
// bumped domain stale; re-reading an annotated source re-acquires. The bit —
// not an unbounded counter — keeps the lattice finite, so bumps inside loops
// still reach a fixpoint. A handle used after an invalidation on ANY path
// through the CFG is reported with the full acquire → invalidate → use
// chain, like the confinement escape paths.
// Invalidation is interprocedural: a function that (transitively) calls an
// epoch-bumping function bumps at its own call sites too.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// handleVal is the abstract value of an expression: its handle domain (or
// array index/element domains for slice-typed values), whether an epoch
// bump has invalidated it since acquisition, the acquisition site, and the
// parameter-taint mask used for expectation inference. param marks values
// excused from the cannot-prove rule (unannotated parameters, including
// literal parameters). The stale bit — rather than an unbounded epoch
// counter — keeps the lattice finite, so bumps inside loops converge.
type handleVal struct {
	dom   string
	idx   string
	elem  string
	stale bool
	acq   token.Pos
	param bool
	mask  uint64
}

func (v handleVal) zero() bool {
	return v.dom == "" && v.idx == "" && v.elem == "" && !v.param && v.mask == 0
}

// sameDomains reports whether two values agree on all three domain slots.
func sameDomains(a, b handleVal) bool {
	return a.dom == b.dom && a.idx == b.idx && a.elem == b.elem
}

// invalSite is the most recent epoch bump of one domain on the current path.
type invalSite struct {
	pos  token.Pos
	what string
}

// handleFact is the per-program-point state: tracked variables and, for
// every domain bumped on some path through this point, the invalidation
// site (for path rendering).
type handleFact struct {
	vars  map[types.Object]handleVal
	inval map[string]invalSite
}

func newHandleFact() handleFact {
	return handleFact{vars: map[types.Object]handleVal{}, inval: map[string]invalSite{}}
}

var handleLattice = flowLattice[handleFact]{
	bottom: func() handleFact { return newHandleFact() },
	clone: func(f handleFact) handleFact {
		c := handleFact{
			vars:  make(map[types.Object]handleVal, len(f.vars)),
			inval: make(map[string]invalSite, len(f.inval)),
		}
		for k, v := range f.vars {
			c.vars[k] = v
		}
		for k, v := range f.inval {
			c.inval[k] = v
		}
		return c
	},
	join: func(dst, src handleFact) handleFact {
		for k, v := range src.vars {
			cur, ok := dst.vars[k]
			if !ok {
				dst.vars[k] = v
				continue
			}
			if !sameDomains(cur, v) {
				// Domain disagreement across paths: forget the domains but
				// keep the taint provenance.
				cur.dom, cur.idx, cur.elem = "", "", ""
			}
			if v.stale && !cur.stale {
				// May-staleness: a handle stale on one incoming path is stale
				// at the join; keep the stale side's acquisition.
				cur.stale, cur.acq = true, v.acq
			}
			cur.param = cur.param || v.param
			cur.mask |= v.mask
			dst.vars[k] = cur
		}
		for d, s := range src.inval {
			// May-invalidation: a bump on ANY path is visible at the join.
			// Position order breaks site ties deterministically.
			if cur, ok := dst.inval[d]; !ok || s.pos < cur.pos {
				dst.inval[d] = s
			}
		}
		return dst
	},
	equal: func(a, b handleFact) bool {
		if len(a.vars) != len(b.vars) || len(a.inval) != len(b.inval) {
			return false
		}
		for k, v := range a.vars {
			if b.vars[k] != v {
				return false
			}
		}
		for d, s := range a.inval {
			if b.inval[d] != s {
				return false
			}
		}
		return true
	},
}

// handleSummaries holds the interprocedural state: inferred parameter
// expectations, return domains, and the invalidation sets, refined to
// fixpoint over the call graph. Explicit //hypatia:handle annotations are
// immutable axioms the proposals never override.
type handleSummaries struct {
	hx          *handleIndex
	expect      map[*types.Func][]string
	expectConf  map[*types.Func]uint64
	ret         map[*types.Func]string
	retConf     map[*types.Func]bool
	invalidates map[*types.Func]map[string]bool
	changed     bool
}

func newHandleSummaries(hx *handleIndex) *handleSummaries {
	s := &handleSummaries{
		hx:          hx,
		expect:      map[*types.Func][]string{},
		expectConf:  map[*types.Func]uint64{},
		ret:         map[*types.Func]string{},
		retConf:     map[*types.Func]bool{},
		invalidates: map[*types.Func]map[string]bool{},
	}
	for fn, doms := range hx.epochFns {
		set := map[string]bool{}
		for _, d := range doms {
			set[d] = true
		}
		s.invalidates[fn] = set
	}
	return s
}

// explicitParam returns the annotated spec for fn's idx-th parameter.
func (s *handleSummaries) explicitParam(fn *types.Func, idx int) handleSpec {
	if specs := s.hx.params[fn]; idx < len(specs) {
		return specs[idx]
	}
	return handleSpec{}
}

func (s *handleSummaries) propose(fn *types.Func, idx int, dom string) {
	if fn == nil || dom == "" || idx >= 64 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return
	}
	if !s.explicitParam(fn, idx).zero() {
		return
	}
	if s.expect[fn] == nil {
		s.expect[fn] = make([]string, sig.Params().Len())
	}
	if s.expectConf[fn]&(1<<idx) != 0 {
		return
	}
	switch cur := s.expect[fn][idx]; {
	case cur == "":
		s.expect[fn][idx] = dom
		s.changed = true
	case cur != dom:
		s.expect[fn][idx] = ""
		s.expectConf[fn] |= 1 << idx
		s.changed = true
	}
}

func (s *handleSummaries) proposeRet(fn *types.Func, dom string) {
	if fn == nil || dom == "" || s.retConf[fn] || s.hx.results[fn] != nil {
		return
	}
	switch cur := s.ret[fn]; {
	case cur == "":
		s.ret[fn] = dom
		s.changed = true
	case cur != dom:
		s.ret[fn] = ""
		s.retConf[fn] = true
		s.changed = true
	}
}

func (s *handleSummaries) proposeInval(fn *types.Func, doms map[string]bool) {
	if fn == nil || len(doms) == 0 {
		return
	}
	set := s.invalidates[fn]
	if set == nil {
		set = map[string]bool{}
		s.invalidates[fn] = set
	}
	for d := range doms {
		if !set[d] {
			set[d] = true
			s.changed = true
		}
	}
}

// expectation returns the scalar domain fn's idx-th parameter must carry:
// the explicit annotation if present, otherwise the inferred one.
func (s *handleSummaries) expectation(fn *types.Func, idx int) string {
	if spec := s.explicitParam(fn, idx); !spec.zero() {
		return spec.dom // array-spec parameters are not scalar sinks
	}
	if e := s.expect[fn]; idx < len(e) {
		return e[idx]
	}
	return ""
}

// retSpecs returns the handle specs of fn's result tuple: explicit
// annotations, or the single inferred return domain.
func (s *handleSummaries) retSpecs(fn *types.Func) []handleSpec {
	if specs := s.hx.results[fn]; specs != nil {
		return specs
	}
	if d := s.ret[fn]; d != "" {
		return []handleSpec{{dom: d}}
	}
	return nil
}

// checkHandleSafetyPkgs runs the handlesafety family: Phase A refines the
// summaries to fixpoint over every loaded package inside the handle scope,
// Phase B reports against them for the lint targets, then checks switch
// exhaustiveness over the annotated tag types.
func checkHandleSafetyPkgs(targets, all []*pkg, cfg config, hx *handleIndex, rep *reporter) {
	if hx.count == 0 {
		return
	}
	var scopeAll, scopeTargets []*pkg
	seen := map[*pkg]bool{}
	for _, p := range all {
		if inSimScope(p.path, cfg.handleScope) && !seen[p] {
			seen[p] = true
			scopeAll = append(scopeAll, p)
		}
	}
	for _, p := range targets {
		if inSimScope(p.path, cfg.handleScope) {
			scopeTargets = append(scopeTargets, p)
			if !seen[p] {
				seen[p] = true
				scopeAll = append(scopeAll, p)
			}
		}
	}
	if len(scopeTargets) == 0 {
		return
	}
	sums := newHandleSummaries(hx)
	for iter := 0; iter < 10; iter++ {
		sums.changed = false
		for _, p := range scopeAll {
			forEachFuncDecl(p, func(fd *ast.FuncDecl) {
				analyzeHandlesFunc(p, fd, hx, sums, nil)
			})
		}
		if !sums.changed {
			break
		}
	}
	for _, p := range scopeTargets {
		rp := rep
		forEachFuncDecl(p, func(fd *ast.FuncDecl) {
			analyzeHandlesFunc(p, fd, hx, sums, rp)
		})
		checkExhaustivePkg(p, hx, rep)
	}
}

// analyzeHandlesFunc runs the handle dataflow over one declaration and the
// literals it contains. rep == nil means summary (inference) mode.
func analyzeHandlesFunc(p *pkg, fd *ast.FuncDecl, hx *handleIndex, sums *handleSummaries, rep *reporter) {
	fn, _ := p.info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	hc := &handleChecker{p: p, hx: hx, sums: sums, fn: fn, params: map[*types.Var]int{}, paramObjs: map[types.Object]bool{}}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			hc.params[sig.Params().At(i)] = i
			hc.paramObjs[sig.Params().At(i)] = true
		}
		if sig.Recv() != nil {
			hc.paramObjs[sig.Recv()] = true
		}
	}
	bodies := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
			// Literal parameters are excused from the cannot-prove rule:
			// the literal's call sites are dynamic, so no expectation can
			// reach them.
			for _, fld := range lit.Type.Params.List {
				for _, name := range fld.Names {
					if obj := p.info.Defs[name]; obj != nil {
						hc.paramObjs[obj] = true
					}
				}
			}
		}
		return true
	})
	for _, body := range bodies {
		g := buildCFG(body, p.info)
		if g.unstructured {
			continue
		}
		isDeclBody := body == fd.Body
		xfer := func(f handleFact, n ast.Node, emit func(ast.Node, string, string)) handleFact {
			return hc.transfer(f, n, isDeclBody, emit)
		}
		in := forwardDataflow(g, handleLattice, newHandleFact(), xfer)
		if rep != nil {
			emit := func(n ast.Node, check, msg string) { rep.add(n.Pos(), check, msg) }
			replayDataflow(g, handleLattice, in, xfer, emit)
		} else {
			replayDataflow(g, handleLattice, in, xfer, nil)
		}
	}
}

type handleChecker struct {
	p         *pkg
	hx        *handleIndex
	sums      *handleSummaries
	fn        *types.Func
	params    map[*types.Var]int    // declaration parameters -> mask index
	paramObjs map[types.Object]bool // every parameter object, literals included
}

// posOf renders a position for path messages.
func (hc *handleChecker) posOf(pos token.Pos) string {
	p := hc.p.fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", shortFile(p.Filename), p.Line, p.Column)
}

// acqText renders a value's acquisition site for findings.
func (hc *handleChecker) acqText(v handleVal) string {
	if !v.acq.IsValid() {
		return ""
	}
	return " (acquired at " + hc.posOf(v.acq) + ")"
}

// exprName renders an expression for findings, compactly.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.CallExpr:
		return exprName(e.Fun) + "()"
	case *ast.StarExpr:
		return exprName(e.X)
	}
	return "expression"
}

// coercible reports whether a coercion comment can take effect on this
// store target: a named (non-blank) identifier.
func coercible(lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	return ok && id.Name != "_"
}

// fnDisplay renders a callee for invalidation messages.
func fnDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, rn, ok := namedType(sig.Recv().Type()); ok {
			return rn + "." + name
		}
	}
	return name
}

// bump invalidates every tracked handle governed by a domain in doms,
// recording the site.
func (hc *handleChecker) bump(f handleFact, doms map[string]bool, pos token.Pos, what string) {
	for d := range doms {
		hc.bumpOne(f, d, pos, what)
	}
}

func (hc *handleChecker) bumpOne(f handleFact, dom string, pos token.Pos, what string) {
	f.inval[dom] = invalSite{pos: pos, what: what}
	for k, v := range f.vars {
		if !v.stale && hc.hx.staleDom(v.dom, v.idx, v.elem) == dom {
			v.stale = true
			f.vars[k] = v
		}
	}
}

// specVal materializes an annotated declaration's value, freshly acquired.
func (hc *handleChecker) specVal(f handleFact, spec handleSpec, acq token.Pos) handleVal {
	return handleVal{dom: spec.dom, idx: spec.idx, elem: spec.elem, acq: acq}
}

// checkStale reports v if an epoch bump of its governing domain invalidated
// it after acquisition, rendering the acquire → invalidate → use path.
func (hc *handleChecker) checkStale(f handleFact, v handleVal, at ast.Node, what string, emit func(ast.Node, string, string)) bool {
	d := hc.hx.staleDom(v.dom, v.idx, v.elem)
	if d == "" || !v.stale {
		return false
	}
	if emit != nil {
		site := f.inval[d]
		acq := "function entry"
		if v.acq.IsValid() {
			acq = hc.posOf(v.acq)
		}
		emit(at, checkHandleSafety, fmt.Sprintf(
			"stale %s handle: acquired at %s → invalidated by %s at %s → used here (%s); re-acquire after the invalidation",
			d, acq, site.what, hc.posOf(site.pos), what))
	}
	return true
}

// transfer advances the handle fact across one CFG node.
func (hc *handleChecker) transfer(f handleFact, n ast.Node, inDecl bool, emit func(ast.Node, string, string)) handleFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		co := hc.hx.coercionAt(hc.p.fset, n.Pos())
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			var vals []handleVal
			for _, rhs := range n.Rhs {
				vals = append(vals, hc.eval(f, rhs, emit))
			}
			if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
				// Multi-value call: distribute the callee's result specs.
				vals = hc.tupleVals(f, n.Rhs[0], len(n.Lhs))
			}
			for i, lhs := range n.Lhs {
				v := handleVal{}
				if i < len(vals) && (len(n.Lhs) == len(n.Rhs) || len(n.Rhs) == 1) {
					v = vals[i]
				}
				if co != nil && coercible(lhs) {
					v = handleVal{dom: co.dom, acq: lhs.Pos()}
					hc.hx.honored[co.pos] = true
				}
				hc.store(f, lhs, v, emit)
			}
		} else {
			for i, lhs := range n.Lhs {
				cur := hc.eval(f, lhs, nil)
				var rhs handleVal
				if i < len(n.Rhs) {
					rhs = hc.eval(f, n.Rhs[i], emit)
				}
				res := cur
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN:
					// += const keeps the domain (handle arithmetic within an
					// arena); anything else forgets.
					if i >= len(n.Rhs) || !hc.isConst(n.Rhs[i]) {
						res = handleVal{mask: cur.mask | rhs.mask}
					}
				default:
					res = handleVal{mask: cur.mask | rhs.mask}
				}
				if co != nil && coercible(lhs) {
					res = handleVal{dom: co.dom, acq: lhs.Pos()}
					hc.hx.honored[co.pos] = true
				}
				hc.store(f, lhs, res, emit)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			v := hc.eval(f, r, emit)
			if inDecl && len(n.Results) == 1 {
				hc.sums.proposeRet(hc.fn, v.dom)
			}
		}
	case *ast.RangeStmt:
		v := hc.eval(f, n.X, emit)
		hc.checkStale(f, v, n.X, "ranged over "+exprName(n.X), emit)
		co := hc.hx.coercionAt(hc.p.fset, n.Pos())
		if n.Key != nil {
			kv := handleVal{}
			if v.idx != "" {
				kv = hc.specVal(f, handleSpec{dom: v.idx}, n.Key.Pos())
			}
			if co != nil && coercible(n.Key) {
				kv = handleVal{dom: co.dom, acq: n.Key.Pos()}
				hc.hx.honored[co.pos] = true
			}
			hc.store(f, n.Key, kv, nil)
		}
		if n.Value != nil {
			vv := handleVal{}
			if v.elem != "" {
				vv = hc.specVal(f, handleSpec{dom: v.elem}, n.Value.Pos())
			}
			hc.store(f, n.Value, vv, nil)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			co := hc.hx.coercionAt(hc.p.fset, n.Pos())
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v := handleVal{}
					if i < len(vs.Values) {
						v = hc.eval(f, vs.Values[i], emit)
					}
					if co != nil {
						v = handleVal{dom: co.dom, acq: name.Pos()}
						hc.hx.honored[co.pos] = true
					}
					hc.store(f, name, v, emit)
				}
			}
		}
	case *ast.IncDecStmt:
		hc.eval(f, n.X, emit)
		// x++ keeps x's domain; a ++ on an epoch field is an invalidation.
		if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
			if field, ok := hc.p.info.Uses[sel.Sel].(*types.Var); ok {
				if dom, ok := hc.hx.epochFields[field]; ok {
					hc.bumpOne(f, dom, n.Pos(), "write to field "+field.Name())
					hc.sums.proposeInval(hc.fn, map[string]bool{dom: true})
				}
			}
		}
	case *ast.SendStmt:
		hc.eval(f, n.Chan, emit)
		hc.eval(f, n.Value, emit)
	case *ast.ExprStmt:
		hc.eval(f, n.X, emit)
	case *ast.GoStmt:
		hc.eval(f, n.Call, emit)
	case *ast.DeferStmt:
		hc.eval(f, n.Call, emit)
	case ast.Expr:
		hc.eval(f, n, emit)
	case *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// no expressions
	default:
		shallowInspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				hc.eval(f, call, emit)
				return false
			}
			return true
		})
	}
	return f
}

// tupleVals distributes a multi-value call's results across the assignment.
func (hc *handleChecker) tupleVals(f handleFact, rhs ast.Expr, n int) []handleVal {
	vals := make([]handleVal, n)
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return vals
	}
	fn := resolveCallee(hc.p.info, call)
	if fn == nil {
		return vals
	}
	specs := hc.sums.retSpecs(fn)
	for i := 0; i < n && i < len(specs); i++ {
		if !specs[i].zero() {
			vals[i] = hc.specVal(f, specs[i], call.Pos())
		}
	}
	return vals
}

// handleTrackable reports whether stores to obj are worth tracking: integer-kind
// scalars and arrays can carry handles.
func handleTrackable(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsInteger != 0
	}
	return isArrayType(t)
}

// store writes a value into an assignable expression: identifiers update
// the fact; stores through annotated fields and arrays are checked as
// sinks, and writes to epoch fields advance their domain.
func (hc *handleChecker) store(f handleFact, lhs ast.Expr, v handleVal, emit func(ast.Node, string, string)) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := hc.p.info.Defs[lhs]
		if obj == nil {
			obj = hc.p.info.Uses[lhs]
		}
		if obj == nil || !handleTrackable(obj.Type()) {
			return
		}
		f.vars[obj] = v
	case *ast.SelectorExpr:
		hc.eval(f, lhs.X, emit)
		field, ok := hc.p.info.Uses[lhs.Sel].(*types.Var)
		if !ok || !field.IsField() {
			return
		}
		if spec, ok := hc.hx.fields[field]; ok {
			want := spec.dom
			if spec.elem != "" && isArrayType(hc.p.info.TypeOf(lhs)) {
				// Assigning a whole slice: element domains must agree.
				want = ""
				if v.elem != "" && v.elem != spec.elem && emit != nil {
					emit(lhs, checkHandleSafety, fmt.Sprintf(
						"store into %s replaces %s elements with %s elements%s",
						field.Name(), spec.elem, v.elem, hc.acqText(v)))
				}
			}
			if want != "" {
				if v.dom != "" && v.dom != want {
					if emit != nil {
						emit(lhs, checkHandleSafety, fmt.Sprintf(
							"store into field %s (a %s handle) of a %s handle%s",
							field.Name(), want, v.dom, hc.acqText(v)))
					}
				} else if v.dom == "" {
					hc.inferMask(v.mask, want)
				}
			}
		}
		if dom, ok := hc.hx.epochFields[field]; ok {
			hc.bumpOne(f, dom, lhs.Pos(), "write to field "+field.Name())
			hc.sums.proposeInval(hc.fn, map[string]bool{dom: true})
		}
	case *ast.IndexExpr:
		base := hc.eval(f, lhs.X, emit)
		hc.checkIndex(f, lhs, base, emit)
		if base.elem != "" {
			if v.dom != "" && v.dom != base.elem {
				if emit != nil {
					emit(lhs, checkHandleSafety, fmt.Sprintf(
						"store into %s (elements are %s handles) of a %s handle%s",
						exprName(lhs.X), base.elem, v.dom, hc.acqText(v)))
				}
			} else if v.dom == "" {
				hc.inferMask(v.mask, base.elem)
			}
		}
	case *ast.StarExpr:
		hc.eval(f, lhs.X, emit)
	}
}

// eval computes the abstract handle value of an expression, reporting
// index-domain and staleness violations along the way when emit is non-nil.
func (hc *handleChecker) eval(f handleFact, e ast.Expr, emit func(ast.Node, string, string)) handleVal {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return hc.eval(f, e.X, emit)
	case *ast.Ident:
		obj := hc.p.info.Uses[e]
		if obj == nil {
			obj = hc.p.info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || !handleTrackable(v.Type()) {
			return handleVal{}
		}
		if val, tracked := f.vars[obj]; tracked {
			return val
		}
		idx, isParam := hc.params[v]
		if isParam {
			if spec := hc.sums.explicitParam(hc.fn, idx); !spec.zero() {
				val := hc.specVal(f, spec, v.Pos())
				if d := hc.hx.staleDom(val.dom, val.idx, val.elem); d != "" {
					if _, bumped := f.inval[d]; bumped {
						// The parameter was acquired at entry, so any bump on
						// the path to this use invalidates it.
						val.stale = true
					}
				}
				val.param = true
				// No inference mask: the expectation is an axiom, so a value
				// derived from this parameter by domain-erasing arithmetic
				// must be re-proven, not silently excused.
				return val
			}
			val := handleVal{param: true}
			if idx < 64 {
				val.mask = 1 << idx
			}
			return val
		}
		if hc.paramObjs[obj] {
			return handleVal{param: true}
		}
		return handleVal{}
	case *ast.SelectorExpr:
		hc.eval(f, e.X, emit)
		if field, ok := hc.p.info.Uses[e.Sel].(*types.Var); ok && field.IsField() {
			if spec, ok := hc.hx.fields[field]; ok {
				return hc.specVal(f, spec, e.Pos())
			}
		}
		return handleVal{}
	case *ast.CallExpr:
		return hc.evalCall(f, e, emit)
	case *ast.BinaryExpr:
		l := hc.eval(f, e.X, emit)
		r := hc.eval(f, e.Y, emit)
		switch e.Op {
		case token.ADD, token.SUB:
			// handle ± constant stays in the domain (islIdx[node+1]); any
			// other arithmetic must re-prove itself through a coercion.
			if hc.isConst(e.Y) {
				return l
			}
			if hc.isConst(e.X) && e.Op == token.ADD {
				return r
			}
			return handleVal{mask: l.mask | r.mask}
		default:
			return handleVal{mask: l.mask | r.mask}
		}
	case *ast.UnaryExpr:
		v := hc.eval(f, e.X, emit)
		if e.Op == token.ADD || e.Op == token.SUB {
			return v
		}
		return handleVal{}
	case *ast.IndexExpr:
		base := hc.eval(f, e.X, emit)
		return hc.checkIndex(f, e, base, emit)
	case *ast.SliceExpr:
		v := hc.eval(f, e.X, emit)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				hc.eval(f, ix, emit)
			}
		}
		// Slicing rebases the index, so the index domain is gone; elements
		// and their staleness carry over.
		return handleVal{elem: v.elem, stale: v.stale, acq: v.acq}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				hc.eval(f, kv.Value, emit)
			} else {
				hc.eval(f, elt, emit)
			}
		}
		return handleVal{}
	case *ast.StarExpr:
		hc.eval(f, e.X, emit)
		return handleVal{}
	case *ast.TypeAssertExpr:
		hc.eval(f, e.X, emit)
		return handleVal{}
	case *ast.FuncLit:
		return handleVal{} // analyzed as its own CFG
	}
	return handleVal{}
}

// checkIndex validates one index expression against its base's annotation:
// the base must be fresh, and when the base declares an index domain the
// index must provably carry it — a constant, a matching fresh handle, or a
// parameter still awaiting inference. Everything else is a finding.
func (hc *handleChecker) checkIndex(f handleFact, e *ast.IndexExpr, base handleVal, emit func(ast.Node, string, string)) handleVal {
	iv := hc.eval(f, e.Index, emit)
	if !isArrayType(hc.p.info.TypeOf(e.X)) {
		return handleVal{}
	}
	if base.zero() {
		return handleVal{} // unannotated base: nothing to prove
	}
	what := exprName(e.X)
	hc.checkStale(f, base, e, "indexed "+what, emit)
	if base.idx != "" && !hc.isConst(e.Index) {
		switch {
		case iv.dom == base.idx:
			hc.checkStale(f, iv, e.Index, "indexed "+what+" with it", emit)
		case iv.dom != "":
			if emit != nil {
				emit(e.Index, checkHandleSafety, fmt.Sprintf(
					"index into %s (%s-indexed) uses a %s handle%s",
					what, base.idx, iv.dom, hc.acqText(iv)))
			}
		case iv.mask != 0:
			hc.inferMask(iv.mask, base.idx)
		case iv.param:
			// A literal's parameter: call sites are dynamic, excused.
		default:
			if emit != nil {
				emit(e.Index, checkHandleSafety, fmt.Sprintf(
					"cannot prove the index into %s (%s-indexed) is a %s handle; annotate the value's source or add a trailing //hypatia:handle(%s) coercion on its defining statement",
					what, base.idx, base.idx, base.idx))
			}
		}
	}
	if base.elem != "" {
		if isArrayType(hc.p.info.TypeOf(e)) {
			// Nested arrays ([][]int32): the element domain names the scalar
			// leaves, so the inner slice keeps it as an element domain.
			return hc.specVal(f, handleSpec{elem: base.elem}, e.Pos())
		}
		return hc.specVal(f, handleSpec{dom: base.elem}, e.Pos())
	}
	return handleVal{}
}

// evalCall handles conversions, argument expectations, epoch bumps, and
// summarized return domains.
func (hc *handleChecker) evalCall(f handleFact, call *ast.CallExpr, emit func(ast.Node, string, string)) handleVal {
	// Type conversions (int32(x) and friends) keep the operand's handle.
	if tv, ok := hc.p.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return hc.eval(f, call.Args[0], emit)
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && hc.p.info.Uses[fun] != nil {
		if _, isBuiltin := hc.p.info.Uses[fun].(*types.Builtin); isBuiltin {
			for _, a := range call.Args {
				hc.eval(f, a, emit)
			}
			return handleVal{}
		}
	}
	fn := resolveCallee(hc.p.info, call)
	if fn == nil {
		for _, a := range call.Args {
			hc.eval(f, a, emit)
		}
		return handleVal{}
	}
	for i, a := range call.Args {
		v := hc.eval(f, a, emit)
		want := hc.sums.expectation(fn, i)
		if want == "" {
			continue
		}
		switch {
		case v.dom == want:
			hc.checkStale(f, v, a, fmt.Sprintf("passed to %s", fnDisplay(fn)), emit)
		case v.dom != "":
			if emit != nil {
				emit(a, checkHandleSafety, fmt.Sprintf(
					"argument %d of %s expects a %s handle, got a %s handle%s",
					i, fnDisplay(fn), want, v.dom, hc.acqText(v)))
			}
		default:
			hc.inferMask(v.mask, want)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		hc.eval(f, sel.X, nil) // receiver sub-expressions, once, silently
	}
	if inv := hc.sums.invalidates[fn]; len(inv) > 0 {
		hc.bump(f, inv, call.Pos(), "call to "+fnDisplay(fn))
		hc.sums.proposeInval(hc.fn, inv)
	}
	if specs := hc.sums.retSpecs(fn); len(specs) == 1 && !specs[0].zero() {
		return hc.specVal(f, specs[0], call.Pos())
	}
	return handleVal{}
}

func (hc *handleChecker) inferMask(mask uint64, dom string) {
	for idx := 0; mask != 0; idx++ {
		if mask&1 != 0 {
			hc.sums.propose(hc.fn, idx, dom)
		}
		mask >>= 1
	}
}

// isConst reports whether e is a compile-time constant index.
func (hc *handleChecker) isConst(e ast.Expr) bool {
	tv, ok := hc.p.info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}
