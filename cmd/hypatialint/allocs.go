package main

// Interprocedural allocation-effect analysis: the engine behind the
// allocsafety check.
//
// Every call-graph node gets an allocation class from a three-point
// lattice, computed bottom-up over the strongly connected components of
// the module-local call graph exactly like the effect analysis in
// effects.go (and reusing its SCC driver and taint machinery):
//
//	allocNone       provably allocation-free in steady state
//	allocAmortized  allocates only to grow caller-owned storage: append
//	                into a parameter/receiver-derived slice, or any
//	                intrinsic allocation or summarized module-local call
//	                under a capacity guard (`if cap(x) < n` / `x == nil`
//	                — the arena-grow and sync.Pool-miss idioms)
//	allocAlways     allocates on the steady-state path
//
// Allocation sources are syntactic: make/new, slice and map composite
// literals, address-taken composite literals, append (classified by the
// provenance of its base — the effect analysis' taint lattice tells
// caller-owned arenas from fresh slices), closure values that escape
// their defining frame, interface boxing of concrete non-pointer values
// (at call arguments, assignments, and returns), string concatenation and
// string<->[]byte conversions, map writes, go statements, and calls the
// analysis cannot see (dynamic calls, bodyless interface methods,
// standard-library functions without an entry in the summary table).
//
// Two deliberate, visible escape hatches mirror the purity check's:
// a named function type annotated //hypatia:noalloc blesses dynamic calls
// through its values, and a `//hypatia:allocs(amortized) <why>` comment
// on (or immediately above) an allocation site downgrades that site to
// allocAmortized — for growth the guard heuristic cannot see. The
// directive covers every allocation charged at its line: intrinsic sites,
// dynamic-call charges (monitoring hooks, user closures), and the
// inherited steady-state allocations of a summarized module-local callee
// (one-time setup calls in otherwise steady-state loops).
//
// Branches dead under the default build configuration are skipped: an
// `if check.Enabled { ... }` body (check.Enabled is a build-tag constant,
// false without -tags hypatia_checks) may allocate freely without
// disqualifying the enclosing function, because the production binary
// never executes it. So are branches that unconditionally end in panic:
// a failure path crashes the program, so the fmt.Sprintf feeding the
// panic message is not a steady-state allocation.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// allocClass is the three-point allocation lattice, ordered by severity.
type allocClass uint8

const (
	allocNone      allocClass = iota
	allocAmortized            // grows caller-owned storage; free in steady state
	allocAlways               // allocates on the steady-state path
)

func (c allocClass) String() string {
	switch c {
	case allocAmortized:
		return "amortized-grow"
	case allocAlways:
		return "allocates"
	}
	return "noalloc"
}

// allocSummary is the computed allocation class of one call-graph node,
// with one witness per non-bottom class.
type allocSummary struct {
	class   allocClass
	origins map[allocClass]origin
}

func (s *allocSummary) add(c allocClass, o origin) bool {
	if c == allocNone {
		return false
	}
	if s.origins == nil {
		s.origins = map[allocClass]origin{}
	}
	changed := false
	if _, ok := s.origins[c]; !ok {
		s.origins[c] = o
		changed = true
	}
	if c > s.class {
		s.class = c
		changed = true
	}
	return changed
}

// witness returns the origin of the summary's steady-state allocation,
// if it has one.
func (s *allocSummary) witness() (origin, bool) {
	if s.class != allocAlways {
		return origin{}, false
	}
	return s.origins[allocAlways], true
}

// Directives of the allocation contract.
const (
	noallocDirective   = "//hypatia:noalloc"
	amortizedDirective = "//hypatia:allocs(amortized)"
)

// allocAnalysis is the module-wide result: a summary per node plus the
// directive sets the allocsafety check consumes.
type allocAnalysis struct {
	ean    *effectAnalysis // minimal carrier for cg + nodeName (no effect summaries)
	module string

	summaries map[cgKey]*allocSummary
	// noallocFns are the //hypatia:noalloc-annotated declared functions.
	noallocFns map[*types.Func]bool
	// noallocTypes are named function types annotated //hypatia:noalloc:
	// dynamic calls through values of such a type are allocation-free by
	// documented contract.
	noallocTypes map[*types.TypeName]bool
	// noallocIfaces are interfaces annotated //hypatia:noalloc: calls
	// through their methods are trusted, and module-local implementers are
	// held to the contract by checkAllocSafetyPkgs. The list keeps the
	// deterministic collection order for reporting.
	noallocIfaces    map[*types.TypeName]bool
	noallocIfaceList []*types.TypeName
	// amortizedAt maps filename -> line -> the //hypatia:allocs(amortized)
	// directive covering that line (the directive's own line and the next,
	// like //lint:ignore).
	amortizedAt map[string]map[int]*ast.Comment
	// honored records the comment positions of allocation directives that
	// took effect, so checkDirectiveComments can flag dead ones.
	honored map[token.Pos]bool
}

// analyzeAllocs computes allocation summaries for every node of the call
// graph, bottom-up over its strongly connected components.
func analyzeAllocs(all []*pkg, cg *callGraph, module string) *allocAnalysis {
	ax := &allocAnalysis{
		ean:           &effectAnalysis{cg: cg, module: module},
		module:        module,
		summaries:     map[cgKey]*allocSummary{},
		noallocFns:    map[*types.Func]bool{},
		noallocTypes:  map[*types.TypeName]bool{},
		noallocIfaces: map[*types.TypeName]bool{},
		amortizedAt:   map[string]map[int]*ast.Comment{},
		honored:       map[token.Pos]bool{},
	}
	for _, p := range all {
		ax.collectDirectives(p)
	}
	var order []cgKey
	for _, p := range all {
		order = append(order, cg.funcsIn[p]...)
	}
	for _, scc := range sccOrder(order, cg) {
		ax.solveSCC(scc)
	}
	return ax
}

// noallocDirectiveIn returns the //hypatia:noalloc comment of a doc group
// (alone on a line, optionally followed by a rationale), or nil.
func noallocDirectiveIn(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
			return c
		}
	}
	return nil
}

// collectDirectives records //hypatia:noalloc annotations on function and
// named-function-type declarations, and indexes //hypatia:allocs(amortized)
// site comments by the lines they cover.
func (ax *allocAnalysis) collectDirectives(p *pkg) {
	for _, f := range p.files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if c := noallocDirectiveIn(d.Doc); c != nil {
					if fn, ok := p.info.Defs[d.Name].(*types.Func); ok {
						ax.noallocFns[fn] = true
						ax.honored[c.Pos()] = true
					}
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					c := noallocDirectiveIn(ts.Doc)
					if c == nil && len(d.Specs) == 1 {
						c = noallocDirectiveIn(d.Doc)
					}
					if c == nil {
						continue
					}
					tn, ok := p.info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					switch tn.Type().Underlying().(type) {
					case *types.Signature:
						ax.noallocTypes[tn] = true
						ax.honored[c.Pos()] = true
					case *types.Interface:
						ax.noallocIfaces[tn] = true
						ax.noallocIfaceList = append(ax.noallocIfaceList, tn)
						ax.honored[c.Pos()] = true
					}
				}
			}
		}
		for _, cgrp := range f.Comments {
			for _, c := range cgrp.List {
				if c.Text != amortizedDirective && !strings.HasPrefix(c.Text, amortizedDirective+" ") {
					continue
				}
				pos := p.fset.Position(c.Pos())
				lines := ax.amortizedAt[pos.Filename]
				if lines == nil {
					lines = map[int]*ast.Comment{}
					ax.amortizedAt[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if _, taken := lines[line]; !taken {
						lines[line] = c
					}
				}
			}
		}
	}
}

// solveSCC computes the summaries of one component to fixpoint; the
// lattice is finite, so summaries only grow and the iteration is bounded.
func (ax *allocAnalysis) solveSCC(scc []cgKey) {
	inSCC := map[cgKey]bool{}
	for _, k := range scc {
		inSCC[k] = true
		if ax.summaries[k] == nil {
			ax.summaries[k] = &allocSummary{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range scc {
			fresh := ax.scanNode(k)
			cur := ax.summaries[k]
			for _, c := range []allocClass{allocAmortized, allocAlways} {
				if o, ok := fresh.origins[c]; ok && cur.add(c, o) {
					changed = true
				}
			}
		}
	}
}

// scanNode computes one node's allocation summary from its body, composing
// callee summaries (provisional ones for same-SCC callees).
func (ax *allocAnalysis) scanNode(k cgKey) *allocSummary {
	p := ax.ean.cg.pkgOf[k]
	body := ax.ean.cg.body[k]
	sum := &allocSummary{}
	if p == nil || body == nil {
		return sum
	}
	sc := &allocScan{ax: ax, p: p, sum: sum}
	switch k := k.(type) {
	case *types.Func:
		sc.sig, _ = k.Type().(*types.Signature)
	case *ast.FuncLit:
		sc.sig, _ = p.info.TypeOf(k).(*types.Signature)
	}
	// Reuse the effect analysis' taint and closure machinery so append-base
	// provenance agrees with the purity check's notion of caller-owned
	// storage.
	sc.fs = &funcScan{an: ax.ean, p: p, body: body, sum: &funcSummary{}}
	sc.fs.initParams(k)
	sc.fs.solveTaint()
	sc.fs.collectClosures()
	sc.collectCallPositions(body)
	sc.walk(body, false)
	// Literal values that never leave this frame (immediately invoked, or
	// single-bound locals that are only called) fold their bodies in: the
	// literal runs on the definer's frame. Escaping literals were already
	// flagged as closure allocations by the walk; their bodies run on
	// someone else's path, so only the creation cost lands here. Go-launched
	// literals charge the go statement, not the body.
	for _, e := range ax.ean.cg.edges[k] {
		lit, isLit := e.callee.(*ast.FuncLit)
		if !isLit || e.viaGo || !sc.captive(lit) {
			continue
		}
		if ls := ax.summaries[lit]; ls != nil {
			sc.inherit(ls, ax.ean.nodeName(lit), lit.Pos(), false)
		}
	}
	return sum
}

// allocScan is the per-node scan state.
type allocScan struct {
	ax  *allocAnalysis
	p   *pkg
	sum *allocSummary
	sig *types.Signature // the node's own signature, for return boxing
	fs  *funcScan        // borrowed taint/closure machinery
	// callFuns are the expressions in call-function position, so a selector
	// or literal used as a value (method value, escaping closure) can be
	// told from one that is simply being called.
	callFuns map[ast.Expr]bool
	// escaped marks single-bound literals whose variable is used anywhere
	// outside call position — passed as an argument, stored, returned — so
	// the binding really does create a heap closure.
	escaped map[*ast.FuncLit]bool
}

func (sc *allocScan) collectCallPositions(body *ast.BlockStmt) {
	sc.callFuns = map[ast.Expr]bool{}
	sc.escaped = map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			sc.callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := sc.p.info.Uses[id].(*types.Var); ok {
			if lit := sc.fs.closures[v]; lit != nil && !sc.callFuns[id] {
				sc.escaped[lit] = true
			}
		}
		return true
	})
}

// captive reports whether a literal's value never leaves this frame: it is
// either invoked where it stands or bound once to a local that is only
// ever called. Everything else — passed as an argument, stored, returned —
// escapes, and creating it allocates the closure.
func (sc *allocScan) captive(lit *ast.FuncLit) bool {
	if sc.callFuns[lit] {
		return true
	}
	if sc.escaped[lit] {
		return false
	}
	for _, bound := range sc.fs.closures {
		if bound == lit {
			return true
		}
	}
	return false
}

// site records one intrinsic allocation site, honoring a covering
// //hypatia:allocs(amortized) directive and the capacity-guard context.
func (sc *allocScan) site(what string, pos token.Pos, guarded bool) {
	c := allocAlways
	position := sc.p.fset.Position(pos)
	if guarded {
		c = allocAmortized
		what += " (under a capacity guard)"
	} else if d := sc.ax.amortizedAt[position.Filename][position.Line]; d != nil {
		c = allocAmortized
		what += " (//hypatia:allocs(amortized))"
		sc.ax.honored[d.Pos()] = true
	}
	sc.sum.add(c, origin{What: what, Site: position, pos: pos})
}

// always records a site the guard heuristic must not soften (dynamic and
// unknown calls, go statements); the explicit directive still applies.
func (sc *allocScan) always(what string, pos token.Pos) {
	sc.site(what, pos, false)
}

// amortized records a site already classified as caller-owned growth.
func (sc *allocScan) amortized(what string, pos token.Pos) {
	sc.sum.add(allocAmortized, origin{What: what, Site: sc.p.fset.Position(pos), pos: pos})
}

// inherit folds a callee summary into this node, extending the witness
// chain with the callee's name. A call under a capacity guard is the same
// provision-on-miss idiom whether the allocation is inline or inside the
// callee (`if s.G == nil { s.G = graph.New(n) }`), so the guard context
// downgrades inherited steady-state allocations too. So does an explicit
// //hypatia:allocs(amortized) directive covering the call line: the
// directive vouches for every allocation charged at that line, whether the
// site is inline or inside the summarized callee (one-time setup calls in
// otherwise steady-state loops are the intended use).
func (sc *allocScan) inherit(callee *allocSummary, name string, callPos token.Pos, guarded bool) {
	position := sc.p.fset.Position(callPos)
	for _, c := range []allocClass{allocAmortized, allocAlways} {
		o, ok := callee.origins[c]
		if !ok {
			continue
		}
		what := o.What
		if guarded && c == allocAlways {
			c = allocAmortized
			what += " (under a capacity guard)"
		} else if c == allocAlways {
			if d := sc.ax.amortizedAt[position.Filename][position.Line]; d != nil {
				c = allocAmortized
				what += " (//hypatia:allocs(amortized))"
				sc.ax.honored[d.Pos()] = true
			}
		}
		sc.sum.add(c, origin{
			What:  what,
			Site:  o.Site,
			Chain: append([]string{name}, o.Chain...),
			pos:   callPos,
		})
	}
}

// constBool resolves an expression to a compile-time boolean constant
// (check.Enabled under the default build configuration), if it is one.
func constBool(info *types.Info, e ast.Expr) (bool, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// capacityGuard reports whether an if-condition is a growth test: it
// mentions the cap builtin or compares something against nil. Sites in
// either branch of such an if are the arena-grow / pool-miss idiom —
// taken only when storage must be (re)provisioned, so amortized over the
// steady state.
func capacityGuard(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
					found = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				for _, side := range []ast.Expr{n.X, n.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == "nil" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// walk scans one statement tree. guarded is the capacity-guard context;
// function literals are separate nodes and dead branches (if-conditions
// that are compile-time false, e.g. check.Enabled) are skipped entirely.
func (sc *allocScan) walk(n ast.Node, guarded bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.IfStmt:
		sc.walk(n.Init, guarded)
		sc.scanExpr(n.Cond, guarded)
		if v, isConst := constBool(sc.p.info, n.Cond); isConst {
			if v {
				sc.walk(n.Body, guarded)
			} else {
				sc.walk(n.Else, guarded)
			}
			return
		}
		g := guarded || capacityGuard(sc.p.info, n.Cond)
		if !sc.panicTerminated(n.Body) {
			sc.walk(n.Body, g)
		}
		if n.Else != nil && !sc.panicTerminated(n.Else) {
			sc.walk(n.Else, g)
		}
		return
	case *ast.AssignStmt:
		sc.scanAssign(n, guarded)
	case *ast.ReturnStmt:
		sc.scanReturn(n, guarded)
	case *ast.GoStmt:
		// The launch itself allocates; the launched body runs on the new
		// goroutine's path and is not folded in. Arguments are evaluated on
		// this frame, so they still scan.
		sc.always("go statement allocates a goroutine", n.Pos())
		for _, a := range n.Call.Args {
			sc.scanExpr(a, guarded)
		}
		return
	case ast.Expr:
		sc.scanExpr(n, guarded)
		return
	}
	for _, child := range childStmts(n) {
		sc.walk(child, guarded)
	}
}

// panicTerminated reports whether a branch unconditionally ends in a call
// to the panic builtin. Such a branch is a failure path — it crashes the
// program — so nothing in it is a steady-state allocation; the canonical
// shape is `if bad { panic(fmt.Sprintf(...)) }` on an argument-validation
// prologue, and charging the Sprintf would force every checked hot path
// to drop its diagnostics.
func (sc *allocScan) panicTerminated(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return sc.panicTerminated(s.List[len(s.List)-1])
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := sc.p.info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "panic"
	}
	return false
}

// childStmts enumerates the direct children of a statement node, keeping
// the walk's guard context explicit without re-deriving ast.Inspect.
func childStmts(n ast.Node) []ast.Node {
	var out []ast.Node
	add := func(ns ...ast.Node) {
		for _, c := range ns {
			if c != nil && !isNilNode(c) {
				out = append(out, c)
			}
		}
	}
	switch n := n.(type) {
	case *ast.BlockStmt:
		for _, s := range n.List {
			add(s)
		}
	case *ast.ExprStmt:
		add(n.X)
	case *ast.SendStmt:
		add(n.Chan, n.Value)
	case *ast.IncDecStmt:
		add(n.X)
	case *ast.DeferStmt:
		add(n.Call)
	case *ast.LabeledStmt:
		add(n.Stmt)
	case *ast.ForStmt:
		add(n.Init, n.Cond, n.Post, n.Body)
	case *ast.RangeStmt:
		add(n.X, n.Body)
	case *ast.SwitchStmt:
		add(n.Init, n.Tag, n.Body)
	case *ast.TypeSwitchStmt:
		add(n.Init, n.Assign, n.Body)
	case *ast.CaseClause:
		for _, e := range n.List {
			add(e)
		}
		for _, s := range n.Body {
			add(s)
		}
	case *ast.SelectStmt:
		add(n.Body)
	case *ast.CommClause:
		add(n.Comm)
		for _, s := range n.Body {
			add(s)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				add(spec)
			}
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			add(v)
		}
	}
	return out
}

// isNilNode guards against typed-nil interface children (e.g. a ForStmt
// with no Init).
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Stmt:
		return v == nil
	case ast.Expr:
		return v == nil
	}
	return false
}

// scanAssign handles the statement forms with allocation semantics of
// their own: map writes and interface boxing on the left-hand side.
func (sc *allocScan) scanAssign(n *ast.AssignStmt, guarded bool) {
	info := sc.p.info
	for _, lhs := range n.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					sc.site("map assignment may grow the map", lhs.Pos(), guarded)
				}
			}
		}
		sc.scanExpr(lhs, guarded)
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i, rhs := range n.Rhs {
			if lt := info.TypeOf(n.Lhs[i]); lt != nil {
				sc.checkBoxing(lt, rhs, guarded)
			}
		}
	}
	for _, rhs := range n.Rhs {
		sc.scanExpr(rhs, guarded)
	}
}

// scanReturn flags results boxed into interface-typed return values.
func (sc *allocScan) scanReturn(n *ast.ReturnStmt, guarded bool) {
	if sc.sig != nil && len(n.Results) == sc.sig.Results().Len() {
		for i, r := range n.Results {
			sc.checkBoxing(sc.sig.Results().At(i).Type(), r, guarded)
		}
	}
	for _, r := range n.Results {
		sc.scanExpr(r, guarded)
	}
}

// checkBoxing flags a concrete, non-pointer-shaped value converted into an
// interface: the conversion copies the value to the heap. Pointer-shaped
// values (pointers, slices via their header? no — slices box too; only
// single-word pointer kinds) ride in the interface word directly.
func (sc *allocScan) checkBoxing(dst types.Type, src ast.Expr, guarded bool) {
	if dst == nil || src == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	st := sc.p.info.TypeOf(src)
	if st == nil {
		return
	}
	if _, srcIface := st.Underlying().(*types.Interface); srcIface {
		return // interface-to-interface: no new box
	}
	if tv, ok := sc.p.info.Types[src]; ok && tv.IsNil() {
		return
	}
	if boxedFree(st) {
		return
	}
	sc.site(fmt.Sprintf("%s value boxed into an interface", types.TypeString(st, types.RelativeTo(sc.p.types))), src.Pos(), guarded)
}

// boxedFree reports whether values of t fit an interface word without a
// heap allocation: pointer-shaped single-word kinds.
func boxedFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// scanExpr scans one expression tree for allocation sites.
func (sc *allocScan) scanExpr(e ast.Expr, guarded bool) {
	if e == nil || isNilNode(e) {
		return
	}
	info := sc.p.info
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !sc.captive(n) {
				sc.site("function literal escapes; creating the closure allocates", n.Pos(), guarded)
			}
			return false
		case *ast.CallExpr:
			sc.scanCall(n, guarded)
			// Arguments and the function expression are scanned by the
			// inspection itself; conversions recurse too.
			return true
		case *ast.CompositeLit:
			sc.scanCompositeLit(n, guarded)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					sc.site("address-taken composite literal allocates", lit.Pos(), guarded)
					// Still scan the literal's elements, but the literal
					// itself is already charged.
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := info.Types[n]; !ok || tv.Value == nil {
							sc.site("string concatenation allocates", n.Pos(), guarded)
						}
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			// A method value used as a value allocates the bound closure.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !sc.callFuns[n] {
				sc.site(fmt.Sprintf("method value %s allocates a bound closure", n.Sel.Name), n.Pos(), guarded)
			}
			return true
		}
		return true
	})
}

// scanCompositeLit charges slice and map literals; plain struct and array
// literals are stack values (an address-take or interface box charges them
// at that conversion instead — the PR 6 points-to model's "escape by
// reference or by boxing" split, applied syntactically).
func (sc *allocScan) scanCompositeLit(lit *ast.CompositeLit, guarded bool) {
	t := sc.p.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		sc.site("slice literal allocates", lit.Pos(), guarded)
	case *types.Map:
		sc.site("map literal allocates", lit.Pos(), guarded)
	}
}

// scanCall classifies one call expression.
func (sc *allocScan) scanCall(call *ast.CallExpr, guarded bool) {
	info := sc.p.info
	fun := ast.Unparen(call.Fun)

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		sc.scanConversion(call, guarded)
		return
	}
	if _, isLit := fun.(*ast.FuncLit); isLit {
		return // folds in through the definition edge
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			sc.scanBuiltin(b.Name(), call, guarded)
			return
		}
	}

	sc.checkArgBoxing(call, guarded)

	callee := resolveCallee(info, call)
	if callee == nil {
		if id, ok := fun.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if sc.fs.closures[v] != nil {
					return // folds in through the definition edge
				}
			}
		}
		if named, ok := info.TypeOf(call.Fun).(*types.Named); ok && sc.ax.noallocTypes[named.Obj()] {
			return
		}
		sc.always(fmt.Sprintf("calls %s dynamically (not through a //hypatia:noalloc function type)", exprLabel(call.Fun)), call.Pos())
		return
	}

	if _, hasBody := sc.ax.ean.cg.body[callee]; hasBody {
		if cs := sc.ax.summaries[callee]; cs != nil {
			sc.inherit(cs, sc.ax.ean.nodeName(callee), call.Pos(), guarded)
		}
		return
	}
	if sc.ifaceBlessed(fun) {
		return
	}
	if callee.Pkg() == nil {
		sc.always(fmt.Sprintf("calls %s dynamically (interface method)", callee.Name()), call.Pos())
		return
	}
	if callee.Pkg().Path() == sc.ax.module || strings.HasPrefix(callee.Pkg().Path(), sc.ax.module+"/") {
		sc.always(fmt.Sprintf("calls interface method %s (allocation behavior unknown)", callee.Name()), call.Pos())
		return
	}
	sc.scanStdAlloc(call, callee)
}

// ifaceBlessed reports whether a method call goes through an interface
// annotated //hypatia:noalloc. Such calls are trusted here; the honesty
// side is checkAllocSafetyPkgs, which holds every module-local implementer
// to the contract.
func (sc *allocScan) ifaceBlessed(fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := sc.p.info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && sc.ax.noallocIfaces[named.Obj()]
}

// scanConversion charges the conversions that copy their operand to fresh
// storage: string <-> []byte / []rune, and value-to-interface boxing.
func (sc *allocScan) scanConversion(call *ast.CallExpr, guarded bool) {
	if len(call.Args) != 1 {
		return
	}
	info := sc.p.info
	dst := info.TypeOf(call.Fun)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); isIface {
		sc.checkBoxing(dst, call.Args[0], guarded)
		return
	}
	db, dstIsString := dst.Underlying().(*types.Basic)
	sb, srcIsString := src.Underlying().(*types.Basic)
	dstIsString = dstIsString && db.Info()&types.IsString != 0
	srcIsString = srcIsString && sb.Info()&types.IsString != 0
	_, dstIsSlice := dst.Underlying().(*types.Slice)
	_, srcIsSlice := src.Underlying().(*types.Slice)
	switch {
	case dstIsString && srcIsSlice:
		sc.site("[]byte-to-string conversion copies", call.Pos(), guarded)
	case dstIsSlice && srcIsString:
		sc.site("string-to-slice conversion copies", call.Pos(), guarded)
	case dstIsString && !srcIsString:
		// string(rune) / string(int): builds a fresh string.
		if tv, ok := info.Types[call]; !ok || tv.Value == nil {
			sc.site("conversion to string allocates", call.Pos(), guarded)
		}
	}
}

// scanBuiltin charges make/new and classifies append by the provenance of
// its base: growing a parameter- or global-derived slice is the amortized
// arena contract; growing a fresh local has no capacity story and counts
// as a steady-state allocation.
func (sc *allocScan) scanBuiltin(name string, call *ast.CallExpr, guarded bool) {
	switch name {
	case "make":
		sc.site("make allocates", call.Pos(), guarded)
	case "new":
		sc.site("new allocates", call.Pos(), guarded)
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if sc.fs.exprTaint(call.Args[0]) >= taintParam {
			sc.amortized("append may grow caller-owned storage (amortized)", call.Pos())
		} else {
			sc.site("append may grow a fresh slice past its capacity", call.Pos(), guarded)
		}
	}
}

// checkArgBoxing flags concrete values boxed into interface parameters —
// the fmt/errors variadic pattern.
func (sc *allocScan) checkArgBoxing(call *ast.CallExpr, guarded bool) {
	sig, ok := sc.p.info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt != nil {
			sc.checkBoxing(pt, arg, guarded)
		}
	}
}

// ---- standard-library allocation summaries ----

// noallocStdPkgs are packages whose every function is allocation-free.
var noallocStdPkgs = map[string]bool{
	"math": true, "math/bits": true, "cmp": true, "sync/atomic": true,
	"unicode": true, "unicode/utf8": true, "unicode/utf16": true,
}

// noallocStdFuncs are individually whitelisted allocation-free functions
// and methods (keyed like stdLabel renders them).
var noallocStdFuncs = map[string]bool{
	"sort.SearchInts": true, "sort.SearchFloat64s": true, "sort.SearchStrings": true,
	"sort.Search": true, "sort.Ints": true, "sort.Float64s": true, "sort.Strings": true,
	"sort.IntsAreSorted": true, "sort.Float64sAreSorted": true, "sort.StringsAreSorted": true,
	"slices.Equal": true, "slices.Index": true, "slices.Contains": true,
	"slices.Max": true, "slices.Min": true, "slices.BinarySearch": true,
	"slices.Sort": true, "slices.Reverse": true, "slices.IsSorted": true,
	"strings.EqualFold": true, "strings.Compare": true, "strings.Contains": true,
	"strings.HasPrefix": true, "strings.HasSuffix": true, "strings.IndexByte": true,
	"strings.Index": true, "strings.Count": true, "strings.LastIndex": true,
	"bytes.Equal": true, "bytes.Compare": true, "bytes.IndexByte": true,
}

// amortizedStdFuncs allocate only to grow storage they manage for the
// caller: pool misses and explicit growth.
var amortizedStdFuncs = map[string]bool{
	"sync.Pool.Get": true, "sync.Pool.Put": true, "slices.Grow": true,
	"strconv.AppendInt": true, "strconv.AppendUint": true,
	"strconv.AppendFloat": true, "strconv.AppendQuote": true,
}

// stdAllocSummary returns the allocation class of a standard-library
// function, and whether the table knows it at all.
func stdAllocSummary(fn *types.Func) (allocClass, bool) {
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	label := stdLabel(fn)

	if amortizedStdFuncs[label] {
		return allocAmortized, true
	}
	if noallocStdFuncs[label] {
		return allocNone, true
	}
	switch path {
	case "time":
		if !isMethod && wallClockFuncs[fn.Name()] {
			return allocNone, true // Now/Since return values, no heap traffic
		}
		if isMethod || fn.Name() == "Duration" || fn.Name() == "Unix" {
			return allocNone, true
		}
		return allocAlways, true // tickers, timers, parsing
	case "sync":
		if isMethod {
			// Pool methods are handled above; the lock/waitgroup/once family
			// is allocation-free.
			return allocNone, true
		}
		return allocAlways, true // OnceFunc and friends allocate closures
	case "fmt", "errors", "os", "io", "bufio", "log", "reflect":
		return allocAlways, true
	}
	if noallocStdPkgs[path] {
		return allocNone, true
	}
	return allocAlways, false
}

// scanStdAlloc applies the standard-library allocation table.
func (sc *allocScan) scanStdAlloc(call *ast.CallExpr, callee *types.Func) {
	class, known := stdAllocSummary(callee)
	switch {
	case !known:
		sc.always(fmt.Sprintf("calls %s (no allocation summary for this standard-library function)", stdLabel(callee)), call.Pos())
	case class == allocAlways:
		sc.always(fmt.Sprintf("calls %s (allocates)", stdLabel(callee)), call.Pos())
	case class == allocAmortized:
		sc.amortized(fmt.Sprintf("calls %s (amortized growth)", stdLabel(callee)), call.Pos())
	}
}

// serializableAllocs renders the allocation classes of one package's
// declared functions for the on-disk fact cache; allocation-free functions
// are omitted (absence means proven NoAlloc).
func (ax *allocAnalysis) serializableAllocs(p *pkg) map[string]string {
	out := map[string]string{}
	for _, k := range ax.ean.cg.funcsIn[p] {
		fn, ok := k.(*types.Func)
		if !ok {
			continue
		}
		if sum := ax.summaries[k]; sum != nil && sum.class != allocNone {
			out[ax.ean.nodeName(fn)] = sum.class.String()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
