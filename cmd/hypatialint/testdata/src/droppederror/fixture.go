// Package droppederror is a hypatialint fixture for the droppederror check.
package droppederror

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error        { return errors.New("x") }
func pair() (int, error) { return 0, errors.New("x") }
func clean() int         { return 1 }

// Bad exercises the positives: errors dropped in expression statements, go
// statements, and defers.
func Bad(w *os.File) {
	fail()                  // want droppederror
	pair()                  // want droppederror
	go fail()               // want droppederror
	defer fail()            // want droppederror
	fmt.Fprintln(w, "data") // want droppederror
}

// Good exercises the negatives: handled errors, explicit discards,
// non-error calls, and the documented cannot-fail writers.
func Good() error {
	if err := fail(); err != nil {
		return err
	}
	_ = fail()
	v, _ := pair()
	_ = v
	clean()
	fmt.Println("stdout is excluded")
	fmt.Fprintln(os.Stderr, "stderr is excluded")
	var sb strings.Builder
	sb.WriteString("builders cannot fail")
	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Fprintf(&buf, "buffers cannot fail")
	return nil
}

// Suppressed exercises the //lint:ignore escape hatch.
func Suppressed() {
	//lint:ignore droppederror best-effort cleanup on shutdown
	fail()
}
