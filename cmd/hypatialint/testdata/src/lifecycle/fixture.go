// Package lifecyclefix is a hypatialint fixture for the flow-sensitive
// lifecycle check. Lines carrying a "want lifecycle" trailing comment must
// be flagged; unmarked lines must not be. The Good* functions cover every
// sanctioned way a pooled table may leave a function's accounting: released
// on all paths, released via defer, returned, stored, or captured.
package lifecyclefix

import (
	"errors"

	"hypatia/internal/routing"
)

// UseAfterRelease reads a table whose arena may already be reissued.
func UseAfterRelease(pool *routing.TablePool) int32 {
	ft := pool.Empty(0, 4, 2)
	ft.Release()
	return ft.NextHop(0, 1) // want lifecycle
}

// DoubleRelease returns the same buffer to the pool twice.
func DoubleRelease(pool *routing.TablePool) {
	ft := pool.Empty(0, 4, 2)
	ft.Release()
	ft.Release() // want lifecycle
}

// LeakOnEarlyReturn forgets the table on the error path; the finding points
// at the acquisition site.
func LeakOnEarlyReturn(pool *routing.TablePool, bad bool) error {
	ft := pool.Empty(0, 4, 2) // want lifecycle
	if bad {
		return errors.New("early exit leaks ft")
	}
	ft.Release()
	return nil
}

// OverwriteWhileLive drops the only reference to a live table.
func OverwriteWhileLive(pool *routing.TablePool) {
	ft := pool.Empty(0, 4, 2)
	ft = pool.Empty(1, 4, 2) // want lifecycle
	ft.Release()
}

// SuppressedUseAfterRelease shows the sanctioned escape hatch: the finding
// is still produced but marked suppressed, and the directive counts as used.
func SuppressedUseAfterRelease(pool *routing.TablePool) {
	ft := pool.Empty(0, 4, 2)
	ft.Release()
	_ = ft.NextHop(0, 0) //lint:ignore lifecycle fixture demonstrating suppression
}

//lint:ignore lifecycle nothing on the next line is a finding, so this directive is stale // want staleignore
var fixtureVersion = 1

// GoodReleaseAllPaths releases the table on every path out of the function.
func GoodReleaseAllPaths(pool *routing.TablePool, early bool) {
	ft := pool.Empty(0, 4, 2)
	if early {
		ft.Release()
		return
	}
	_ = ft.NextHop(0, 0)
	ft.Release()
}

// GoodDeferRelease covers the early return with a deferred Release.
func GoodDeferRelease(pool *routing.TablePool, early bool) int32 {
	ft := pool.Empty(0, 4, 2)
	defer ft.Release()
	if early {
		return -1
	}
	return ft.NextHop(0, 0)
}

// GoodEscapeReturn hands ownership to the caller.
func GoodEscapeReturn(pool *routing.TablePool) *routing.ForwardingTable {
	ft := pool.Empty(0, 4, 2)
	return ft
}

type holder struct{ ft *routing.ForwardingTable }

// GoodStoreEscapes hands ownership to a container.
func GoodStoreEscapes(pool *routing.TablePool, h *holder) {
	ft := pool.Empty(0, 4, 2)
	h.ft = ft
}

// GoodClosureCapture hands ownership to a closure.
func GoodClosureCapture(pool *routing.TablePool) func() {
	ft := pool.Empty(0, 4, 2)
	return func() { ft.Release() }
}

// GoodAlias transfers the state to the new name; releasing through the alias
// satisfies the original.
func GoodAlias(pool *routing.TablePool) {
	ft := pool.Empty(0, 4, 2)
	alias := ft
	alias.Release()
}
