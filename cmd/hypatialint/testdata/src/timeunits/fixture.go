// Package timeunits is a hypatialint fixture for the timeunits check.
package timeunits

import (
	"math"

	"hypatia/internal/sim"
)

// Bad exercises the positives: truncating float-to-Time conversion,
// unit-dropping Time-to-float conversion, and float equality.
func Bad(t sim.Time, x, y float64) bool {
	_ = sim.Time(x) // want timeunits
	_ = float64(t)  // want timeunits
	if x == 1.5 {   // want timeunits
		return true
	}
	return x != y // want timeunits
}

// Good exercises the negatives: the sanctioned conversions, explicit
// rounding, integer conversions, zero-sentinel comparisons, and ordered
// float comparisons.
func Good(t sim.Time, x, y float64, n int) bool {
	_ = sim.Seconds(x)
	_ = t.Seconds()
	_ = sim.Time(math.Round(x * 1e9))
	_ = sim.Time(n) * sim.Second
	_ = int64(t)
	if x == 0 || y != 0.0 {
		return true
	}
	return x < y
}

// Suppressed exercises the //lint:ignore escape hatch for a deliberate
// exact comparison.
func Suppressed(x, y float64) bool {
	//lint:ignore timeunits exact tie-break intended
	return x == y
}
