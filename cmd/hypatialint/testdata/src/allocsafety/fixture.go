// Package allocfix seeds one positive and one negative case per
// allocation source the allocsafety lattice classifies: escaping
// composite literals, append past provable capacity vs. amortized arena
// growth, closure capture inside a //hypatia:noalloc callee, interface
// boxing through fmt, and the legal capacity-guarded pool-reuse idiom.
package allocfix

import "fmt"

// sliceLit returns a fresh composite literal every call: the slice
// escapes through the return value, so the contract cannot hold.
//
//hypatia:noalloc
func sliceLit() []int { // want allocsafety
	return []int{1, 2, 3}
}

// freshAppend grows a slice with no capacity provenance: every call may
// allocate, and nothing amortizes it.
//
//hypatia:noalloc
func freshAppend(n int) []int { // want allocsafety
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// arena is the caller-owned storage the amortized contract is about.
type arena struct {
	scratch []int
}

// push appends into receiver-owned storage: amortized growth, which the
// noalloc contract allows. Negative case.
//
//hypatia:noalloc
func (a *arena) push(v int) {
	a.scratch = append(a.scratch, v)
}

// warmup grows a fresh slice, but the site is explicitly justified with
// the escape hatch, so the contract holds. Negative case.
//
//hypatia:noalloc
func warmup() []int {
	var out []int
	out = append(out, 1) //hypatia:allocs(amortized) one-shot warm-up growth, never on the per-instant path
	return out
}

// forEach calls its argument dynamically; its own summary carries the
// unknown-call allocation, which surfaces in annotated callers.
func forEach(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// closureCapture hands a capturing literal to forEach: creating the
// closure allocates inside a //hypatia:noalloc function.
//
//hypatia:noalloc
func closureCapture(xs []int, sink *int) { // want allocsafety
	visit := func(i int) { *sink += xs[i] }
	forEach(len(xs), visit)
}

// boxed formats through fmt: the variadic ...any parameter boxes n and
// Sprintf allocates the result.
//
//hypatia:noalloc
func boxed(n int) string { // want allocsafety
	return fmt.Sprintf("n=%d", n)
}

// entry hides its make two calls down; the finding at the annotated
// entry point must carry the full origin call chain.
//
//hypatia:noalloc
func entry(dst []float64) { // want allocsafety
	helper(dst)
}

func helper(dst []float64) {
	mid(dst)
}

func mid(dst []float64) {
	tmp := make([]float64, len(dst))
	copy(dst, tmp)
}

// table and pool mirror the routing TablePool reuse path: a nil-guarded
// pool miss and a capacity-guarded grow are both amortized, so the
// annotated reuse path is clean. Negative case.
type table struct {
	next []int
}

type pool struct {
	free []*table
}

//hypatia:noalloc
func (p *pool) get(n int) *table {
	var t *table
	if len(p.free) > 0 {
		t = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
	}
	if t == nil {
		t = &table{next: make([]int, n)}
	}
	if cap(t.next) < n {
		t.next = make([]int, n)
	}
	t.next = t.next[:n]
	return t
}

//hypatia:noalloc
func (p *pool) put(t *table) {
	p.free = append(p.free, t)
}

// checked validates its argument the way the hot paths do: the Sprintf
// feeds a panic, so it lives on a failure path, not the steady state.
// Negative case.
//
//hypatia:noalloc
func checked(i, n int) int {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("index %d out of range [0,%d)", i, n))
	}
	return i
}

// setup builds its table through a module-local constructor; the directive
// on the call line vouches for the callee's inherited one-time allocation,
// the way pipeline producers waive their engine construction. Negative
// case.
//
//hypatia:noalloc
func setup() *table {
	t := newTable(8) //hypatia:allocs(amortized) one-time setup, off the steady-state path
	return t
}

func newTable(n int) *table {
	return &table{next: make([]int, n)}
}

// Feed carries the //hypatia:noalloc contract on the interface: calls
// through it are trusted by the analysis, and module-local implementers
// are held to the bar by their computed summaries, with no annotation of
// their own.
//
//hypatia:noalloc
type Feed interface {
	Sample(i int) int
}

// total iterates through the blessed interface. Negative case.
//
//hypatia:noalloc
func total(s Feed, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Sample(i)
	}
	return sum
}

// constSource satisfies Feed without allocating: the implementer
// obligation passes on its summary alone. Negative case.
type constSource int

func (c constSource) Sample(i int) int { return int(c) }

// leakySource satisfies Feed but allocates per call; the implementer
// obligation reports it even though the method is unannotated, because an
// allocating implementation would silently break every annotated caller.
type leakySource struct{ vals []*int }

func (l *leakySource) Sample(i int) int { // want allocsafety
	v := new(int)
	*v = i
	l.vals = append(l.vals, v)
	return *v
}

// The directive belongs on functions, named function types, and
// interfaces, not here.
//
//hypatia:noalloc the annotation cannot hold on a struct // want directive
type misplacedTarget struct{}

// stale directive: the next line allocates nothing to downgrade.
func staleAmortized() int {
	x := 1 + 2 //hypatia:allocs(amortized) nothing here allocates // want directive
	return x
}
