// Package ifacefix is a hypatialint fixture for //hypatia:pure on
// interface types: calls through such an interface are trusted, and in
// exchange every module-local type that satisfies it must annotate the
// methods it declares. Lines carrying a "want <check>" trailing comment
// must be flagged; unmarked lines must not be.
package ifacefix

// Source is a //hypatia:pure interface: sum may call At through it
// without knowing the implementation.
//
//hypatia:pure
type Source interface {
	At(i int) int
}

//hypatia:pure
func sum(s Source, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += s.At(i)
	}
	return t
}

// ramp satisfies Source but its At carries no annotation: the trust placed
// in the interface is unearned, reported at the implementation.
type ramp struct{ base int }

func (r ramp) At(i int) int { return r.base + i } // want purity

// fixed satisfies Source and annotates its method: clean.
type fixed struct{ v int }

//hypatia:pure
func (f fixed) At(int) int { return f.v }

var (
	_ Source = ramp{}
	_ Source = fixed{}
)
