// Package puritycore is a hypatialint fixture for the purity check's
// pipeline-root rules: its directory path contains "purity/core", the
// fixture pure scope, so every goroutine launched here is held to the
// worker contract — channels, spawning, and caller-owned arena writes are
// allowed; globals, the wall clock, randomness, IO, map order, and
// unannotated module-local callees are not. Lines carrying a
// "want <check>" trailing comment must be flagged; unmarked lines must
// not be.
package puritycore

// sharedTotal stands in for any package-level accumulator a worker must
// not touch.
var sharedTotal int

// fillColumn is a fixture copy of the forwarding-table column fill with an
// injected write to package-level state.
func fillColumn(dst []int, col int) {
	for i := range dst {
		dst[i] = col
	}
	sharedTotal += col // the injected global write
}

// computeTable is the table-computation entry the worker calls; the
// injected write sits one frame further down.
func computeTable(dst []int, col int) {
	fillColumn(dst, col)
}

// launchTable launches a worker whose table computation hides a global
// write two frames down. The worker's call site is reported three times:
// the inherited write and read of sharedTotal (each naming the
// computeTable -> fillColumn chain), and the unannotated callee itself.
func launchTable(results chan<- []int) {
	go func() {
		dst := make([]int, 8)
		computeTable(dst, 3) // want purity purity purity
		results <- dst
	}()
}

// pump is launched by name below; as a same-package root its body is
// scanned directly and the mutable-global read is reported where it
// happens.
func pump(in <-chan int, out chan<- int) {
	for v := range in {
		out <- v + sharedTotal // want purity
	}
}

func startPump(in <-chan int, out chan<- int) {
	go pump(in, out)
}

// Launching through a function value cannot be traced to a body, so the
// contract cannot be checked: the launch itself is the finding.
func startDynamic(fns []func()) {
	go fns[0]() // want purity
}

// scale is the annotated helper the clean worker leans on.
//
//hypatia:pure
func scale(v, f int) int { return v * f }

// startWorker is the clean shape: channels in and out, writes only into
// the caller-owned arena, annotated helpers only. No findings.
func startWorker(jobs <-chan int, out chan<- int, arena []int) {
	go func() {
		i := 0
		for v := range jobs {
			arena[i%len(arena)] = scale(v, 2)
			i++
			out <- arena[i%len(arena)]
		}
	}()
}
