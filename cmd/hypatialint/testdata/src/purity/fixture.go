// Package purityfix is a hypatialint fixture for the purity check's
// contract rules. //hypatia:pure is a verified promise: an annotated
// function may not carry any impure effect (rule 1, reported at the
// declaration) and may make static module-local calls only to other
// annotated functions (rule 2, reported at the call site). Lines carrying
// a "want <check>" trailing comment must be flagged; unmarked lines must
// not be.
package purityfix

// counter stands in for any package-level accumulator; bump below assigns
// it, which makes it a mutable global.
var counter int

// add is effect-free and honestly annotated: clean.
//
//hypatia:pure
func add(a, b int) int { return a + b }

// bump is annotated but writes package-level state; rule 1 reports the
// broken contract at the declaration.
//
//hypatia:pure
func bump() int { // want purity
	counter++
	return counter
}

// helper is unannotated and effect-free; calling it from an annotated
// function still breaks the contract closure (rule 2).
func helper(x int) int { return x * 2 }

//hypatia:pure
func caller(x int) int {
	return helper(x) // want purity
}

// Op is a //hypatia:pure function type: dynamic calls through it are
// trusted, so apply stays clean.
//
//hypatia:pure
type Op func(int) int

//hypatia:pure
func apply(op Op, x int) int { return op(x) }

// applyRaw calls through a bare function value, which cannot be traced to
// a body or a contract; the unknown call breaks rule 1 at the declaration.
//
//hypatia:pure
func applyRaw(f func(int) int, x int) int { // want purity
	return f(x)
}

// smooth binds a function literal to a local variable exactly once; calls
// through it are calls to the literal, not dynamic calls, so the
// annotation holds.
//
//hypatia:pure
func smooth(xs []int) int {
	avg := func(a, b int) int { return (a + b) / 2 }
	t := 0
	for i := 1; i < len(xs); i++ {
		t += avg(xs[i-1], xs[i])
	}
	return t
}

// suppressed demonstrates that purity findings honor //lint:ignore like
// any other check: the rule-1 finding on the declaration line below is
// suppressed and the directive counts as used.
//
//hypatia:pure
//lint:ignore purity fixture demonstrates suppressing a purity finding
func suppressed() int {
	counter++
	return counter
}

// The analysis honors //hypatia:pure only on functions and named function
// or interface types; anywhere else it is dead weight and reported.
//
//hypatia:pure // want directive
var sink int

// Unknown //hypatia: verbs are reported rather than silently ignored.
//
//hypatia:memoize add // want directive
func unused() {}
