// Package confine is a hypatialint fixture for the confinement check.
// //hypatia:confined on a type (or a struct field) is a machine-proven
// ownership contract: the points-to analysis must show every such value
// reachable from at most one goroutine at a time, with channel send or
// receive and //hypatia:transfer calls as the only sanctioned handoff
// points. Lines carrying a "want <check>" trailing comment must be
// flagged; unmarked lines must not be.
package confine

// arena is the confined type under test.
//
//hypatia:confined
type arena struct {
	buf []int
}

// leaked is where the global-store case publishes an arena, making it
// reachable from every goroutine in the program.
var leaked *arena

func consume(a *arena) {
	if a != nil {
		a.buf = append(a.buf, 1)
	}
}

// loopLaunch captures one arena in a closure launched inside a loop: the
// single value becomes reachable from every iteration's goroutine.
func loopLaunch() {
	a := &arena{}
	for i := 0; i < 4; i++ {
		go func() { // want confinement
			consume(a)
		}()
	}
}

// doubleLaunch hands the same arena to two goroutines; each launch site
// is reported, naming the other.
func doubleLaunch() {
	a := &arena{}
	go consume(a) // want confinement
	go consume(a) // want confinement
}

// sliceAlias shows aliasing through a slice of pointers: the second
// goroutine reaches the same arena through the slice.
func sliceAlias() {
	a := &arena{}
	all := []*arena{a}
	go consume(a)      // want confinement
	go consumeAll(all) // want confinement
}

func consumeAll(as []*arena) {
	for _, a := range as {
		consume(a)
	}
}

// publish stores an arena into a package-level variable, the escape the
// analysis can never bless.
func publish() {
	a := &arena{}
	leaked = a // want confinement
	consume(a)
}

// handler abstracts over consumers; a call through it cannot be traced to
// a body, so a confined argument loses its proof.
type handler interface {
	handle(a *arena)
}

func viaInterface(h handler) {
	a := &arena{}
	h.handle(a) // want confinement
}

// viaFuncValue loses the proof the same way through a bare function value.
func viaFuncValue(f func(*arena)) {
	a := &arena{}
	f(a) // want confinement
}

// singleLaunch hands its arena off exactly once, outside any loop: a
// legal ownership transfer to the new goroutine.
func singleLaunch() {
	a := &arena{}
	go consume(a)
}

// channelHandoff moves arenas to a worker over a channel; the send and
// the range receive are the sanctioned transfer points, so each value
// still has one owner at a time.
func channelHandoff() {
	ch := make(chan *arena)
	done := make(chan struct{})
	go func() {
		for a := range ch {
			consume(a)
		}
		done <- struct{}{}
	}()
	for i := 0; i < 4; i++ {
		ch <- &arena{}
	}
	close(ch)
	<-done
}

// pool is a free list whose get and put are annotated transfer points;
// drawing from it severs the alias between the list and the caller, so
// even loop-launched workers sharing one pool stay provable.
type pool struct {
	free []*arena
}

//hypatia:transfer
func (p *pool) get() *arena {
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		return a
	}
	return &arena{}
}

//hypatia:transfer
func (p *pool) put(a *arena) {
	p.free = append(p.free, a)
}

func pooledWorkers(workers int) {
	p := &pool{}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			a := p.get()
			consume(a)
			p.put(a)
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// list is not confined as a type; box confines it at the field level.
type list struct {
	xs []int
}

// box shows field-granular confinement: whatever its items field holds is
// owned by one goroutine, even though list values elsewhere are free.
type box struct {
	// items is owned by exactly one worker at a time.
	//
	//hypatia:confined
	items *list
}

func useBox(b *box) {
	b.items.xs = append(b.items.xs, 1)
}

// fieldDouble leaks the field-confined list to two goroutines through the
// shared box.
func fieldDouble() {
	b := &box{items: &list{}}
	go useBox(b) // want confinement
	go useBox(b) // want confinement
}

// freeList shows the same list type outside a confined field staying
// unconstrained: sharing it is fine.
func freeList() {
	l := &list{}
	go func() { l.xs = append(l.xs, 1) }()
	go func() { l.xs = append(l.xs, 2) }()
}

// repairScratch mirrors the solver-scratch pattern from internal/graph: a
// reusable arena of per-repair buffers (heap storage, epoch stamps) whose
// recycling is only sound while exactly one repair runs at a time.
//
//hypatia:confined
type repairScratch struct {
	heap  []int
	stamp []int64
}

func repairOne(dst int, sc *repairScratch) {
	sc.stamp = append(sc.stamp, int64(dst))
}

// parallelRepairs fans per-destination repairs out to worker goroutines but
// hands every worker the same scratch: the loop-launched goroutines all
// reach one arena concurrently, and the epoch stamps it carries go racy.
func parallelRepairs(dsts []int) {
	sc := &repairScratch{}
	for _, d := range dsts {
		go repairOne(d, sc) // want confinement
	}
}

// sequentialRepairs reuses one scratch across every destination inside a
// single goroutine — the sound pattern the incremental engine relies on.
func sequentialRepairs(dsts []int) {
	sc := &repairScratch{}
	for _, d := range dsts {
		repairOne(d, sc)
	}
}

// shardState mirrors the sharded event loop from internal/sim: each shard
// owns a confined engine — an event heap and a clock — and the only legal
// way state crosses shards is a timestamped handoff over a channel.
//
//hypatia:confined
type shardState struct {
	heap  []int
	clock int64
}

func pump(st *shardState) {
	st.heap = append(st.heap, int(st.clock))
	st.clock++
}

// crossShardLeak launches two shard goroutines but wires both to shard a's
// heap — the second worker reaches into a foreign shard's engine with no
// transfer point in between, exactly the bug class the sharded loop's
// confinement contract exists to rule out. Shard b is touched by one
// goroutine only and stays legal.
func crossShardLeak() {
	a := &shardState{}
	b := &shardState{}
	go pump(a) // want confinement
	go func() { // want confinement
		pump(a) // the leak: this worker's shard is b, but it pumps a
		pump(b)
	}()
}

// shardHandoff is the sanctioned shape: each engine reaches its goroutine
// as a channel message, so ownership moves with the send and no two
// workers ever hold the same shard.
func shardHandoff() {
	cmds := make(chan *shardState)
	done := make(chan struct{})
	for k := 0; k < 4; k++ {
		go func() {
			st := <-cmds
			pump(st)
			done <- struct{}{}
		}()
	}
	for k := 0; k < 4; k++ {
		cmds <- &shardState{}
	}
	for k := 0; k < 4; k++ {
		<-done
	}
}

// The analysis honors //hypatia:confined only on type declarations and
// struct fields, and //hypatia:transfer only on functions and methods;
// anywhere else they are dead weight and reported.
//
//hypatia:confined // want directive
func misplacedConfined() {}

//hypatia:transfer // want directive
type misplacedTransfer struct{}
