// Package copylock is a hypatialint fixture for the copylock check.
package copylock

import (
	"sync"

	"hypatia/internal/sim"
)

// Guarded contains a mutex and must only move by pointer.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Lock/Unlock delegate so Guarded itself is lock-like.
func (g *Guarded) Lock()   { g.mu.Lock() }
func (g *Guarded) Unlock() { g.mu.Unlock() }

// Nested embeds a Guarded by value, so it is no-copy transitively.
type Nested struct {
	inner Guarded
	name  string
}

func ByValueParam(g Guarded) int { // want copylock
	return g.n
}

func (g Guarded) ValueMethod() int { // want copylock
	return g.n
}

func NestedParam(n Nested) string { // want copylock
	return n.name
}

func Assign(a *Guarded) {
	b := *a // want copylock
	_ = b.n
}

func Range(gs []Guarded, engines []sim.Simulator) {
	for _, g := range gs { // want copylock
		_ = g.n
	}
	for _, e := range engines { // want copylock
		_ = e.Now()
	}
}

func Literal(a *Nested) Nested {
	return Nested{inner: a.inner} // want copylock
}

func CopyEngine(s *sim.Simulator) sim.Time {
	engine := *s // want copylock
	return engine.Now()
}

// Good exercises the negatives: pointers, fresh literals, wait-group use by
// pointer, and discarding with blank.
func Good(a *Guarded, engines []sim.Simulator) {
	c := Guarded{}
	c.mu.Lock()
	c.mu.Unlock()
	p := a
	_ = p
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	for i := range engines {
		_ = engines[i].Now()
	}
}

// Suppressed exercises the //lint:ignore escape hatch.
func Suppressed(a *Guarded) {
	//lint:ignore copylock snapshot of a quiescent value for a test double
	b := *a
	_ = b.n
}
