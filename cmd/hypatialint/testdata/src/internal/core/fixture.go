// Package corefix is a hypatialint fixture for the locksafety check. Its
// directory path contains "internal/core", putting it inside the default
// lock scope. newServer launches run as a goroutine, so run (and everything
// it calls) is the goroutine side; newServer and poke are the event-loop
// side. Fields touched by both sides must be written under the mutex, be
// self-synchronizing (channel, atomic), or be written only before launch.
// Lines carrying a "want locksafety" trailing comment must be flagged;
// unmarked lines must not be.
package corefix

import (
	"sync"
	"sync/atomic"
)

// scratch is per-owner workspace held in a field-confined slot.
type scratch struct {
	tmp []int
}

// workBuf is a worker-owned buffer type, confined wholesale: any field of
// this type is policed by the confinement check, not by locksafety.
//
//hypatia:confined
type workBuf struct {
	xs []int
}

type server struct {
	mu       sync.Mutex
	guarded  int // written under mu on both sides: clean
	racy     int // written bare on both sides: flagged
	pre      int // written only before the go statement: clean
	ch       chan int
	cnt      atomic.Int64
	loopOnly int // never touched by the goroutine: clean
	// arena is owned by whichever side currently runs; its bare writes on
	// both sides are safe because the confinement check, not a lock,
	// polices the handoff.
	//
	//hypatia:confined
	arena *scratch
	buf   *workBuf // confined through its type: same exemption
}

func newServer() *server {
	s := &server{ch: make(chan int)}
	s.pre = 1
	go s.run()
	return s
}

// run is the goroutine side.
func (s *server) run() {
	for v := range s.ch {
		s.mu.Lock()
		s.guarded += v
		s.mu.Unlock()
		s.racy++ // want locksafety
		s.cnt.Add(1)
		_ = s.pre
		// This write needed an ignore before confined fields were exempt
		// from locksafety; the directive is now stale and reported.
		//lint:ignore locksafety arena is confined // want staleignore
		s.arena = &scratch{}
		s.buf = &workBuf{}
	}
}

// poke is the event-loop side.
func (s *server) poke(v int) {
	s.ch <- v
	s.mu.Lock()
	s.guarded++
	s.mu.Unlock()
	s.racy = 0 // want locksafety
	s.loopOnly++
	s.arena = &scratch{} // clean: the confinement contract covers it
	s.buf = &workBuf{}   // clean: confined through its type
}

var _ = newServer
var _ = (*server).poke
