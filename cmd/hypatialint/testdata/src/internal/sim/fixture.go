// Package simfix is a hypatialint fixture. Its directory path contains
// "internal/sim", so the nondeterminism check treats it as simulator-core
// code. Lines carrying a "want <check>" trailing comment must be flagged;
// unmarked lines must not be.
package simfix

import (
	"math/rand"
	"sort"
	"time"

	"hypatia/internal/sim"
)

// Bad exercises the nondeterminism positives.
func Bad(s *sim.Simulator, peers map[int]func()) {
	_ = time.Now()              // want nondeterminism
	_ = rand.Intn(10)           // want nondeterminism
	_ = time.Since(time.Time{}) // want nondeterminism
	for _, fn := range peers {
		s.Schedule(sim.Second, fn) // want nondeterminism
	}
}

// BadScheduleAt flags the other scheduling entry points from a map range.
func BadScheduleAt(s *sim.Simulator, n *sim.Network, work map[string]int) {
	for range work {
		s.ScheduleAt(sim.Second, func() {}) // want nondeterminism
		n.Send(0, 1, 1, 100, nil)           // want nondeterminism
	}
}

// Good exercises the negatives: explicitly seeded rand, scheduling from a
// slice, and scheduling from sorted map keys.
func Good(s *sim.Simulator, peers []func(), work map[int]func()) {
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)
	for _, fn := range peers {
		s.Schedule(sim.Second, fn)
	}
	keys := make([]int, 0, len(work))
	for k := range work {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		s.Schedule(sim.Second, work[k])
	}
}

// Suppressed exercises the //lint:ignore escape hatch.
func Suppressed() {
	//lint:ignore nondeterminism wall-clock profiling of the host, not sim time
	_ = time.Now()
}
