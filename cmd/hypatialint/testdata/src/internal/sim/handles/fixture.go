// Package handles seeds the handlesafety fixture bugs — a cross-domain
// index, stale-epoch uses after arena invalidations, an unprovable index,
// and a non-exhaustive tag switch — alongside the sanctioned patterns that
// must stay clean: matching domains, trailing coercions for flat-index
// arithmetic and counting loops, annotated returns, and exhaustive or
// defaulted switches.
package handles

// kind is the event tag; every switch over it must cover all constants or
// carry a default.
//
//hypatia:exhaustive
type kind uint8

const (
	kSend kind = iota
	kRecv
	kDrop
)

// table is a miniature struct-of-arrays core: devices addressed by node,
// queue lengths addressed by device, and a ring arena whose head write
// invalidates outstanding slots.
type table struct {
	devs   []int32 //hypatia:handle(node->device)
	queues []int32 //hypatia:handle(device)
	rings  []int32 //hypatia:handle(ring-slot)
	head   int32   //hypatia:epoch(ring-slot)
	count  int32
}

// lookup is domain-correct end to end: node indexes devs, and the device
// element indexes queues.
//
//hypatia:handle(node: node)
func (t *table) lookup(node int32) int32 {
	d := t.devs[node]
	return t.queues[d]
}

// crossDomain seeds fixture bug 1: a node handle indexing the
// device-indexed queues array.
//
//hypatia:handle(node: node)
func (t *table) crossDomain(node int32) int32 {
	return t.queues[node] // want handlesafety
}

// reset rewinds the ring arena; the head write bumps the ring-slot epoch,
// and the invalidation propagates to reset's callers without any
// annotation of its own.
func (t *table) reset() {
	t.head = 0
}

// staleRing seeds fixture bug 2: slot is acquired at entry, reset bumps
// the ring-slot epoch mid-function, and the second dereference is stale.
//
//hypatia:handle(slot: ring-slot)
func (t *table) staleRing(slot int32) int32 {
	a := t.rings[slot]
	t.reset()
	return a + t.rings[slot] // want handlesafety
}

// wipe rebuilds the ring arena wholesale; the epoch directive declares the
// invalidation explicitly.
//
//hypatia:epoch(t: ring-slot)
func wipe(t *table) {
	for i := range t.rings {
		t.rings[i] = 0
	}
}

// staleAfterWipe is bug 2 again through the annotated invalidator.
//
//hypatia:handle(slot: ring-slot)
func staleAfterWipe(t *table, slot int32) int32 {
	wipe(t)
	return t.rings[slot] // want handlesafety
}

// freshAfterWipe re-acquires after the invalidation; no finding.
func freshAfterWipe(t *table) int32 {
	wipe(t)
	slot := t.head //hypatia:handle(ring-slot) head is the next live slot
	return t.rings[slot]
}

// dispatch seeds fixture bug 3: the switch misses kDrop and has no
// default, so a new event kind would fall through silently.
func dispatch(k kind) int32 {
	switch k { // want handlesafety
	case kSend:
		return 1
	case kRecv:
		return 2
	}
	return 0
}

// dispatchAll covers every constant; no finding.
func dispatchAll(k kind) int32 {
	switch k {
	case kSend, kRecv, kDrop:
		return 1
	}
	return 0
}

// dispatchDefault relies on its default arm; no finding.
func dispatchDefault(k kind) int32 {
	switch k {
	case kSend:
		return 1
	default:
		return 0
	}
}

// pick returns a device handle for the node; the return annotation makes
// the result usable at device sinks.
//
//hypatia:handle(node: node, return: device)
func (t *table) pick(node int32) int32 {
	return t.devs[node]
}

// usesPick consumes the annotated return correctly; no finding.
//
//hypatia:handle(node: node)
func (t *table) usesPick(node int32) int32 {
	return t.queues[t.pick(node)]
}

// wrongUse routes the device result back into the node-indexed array.
//
//hypatia:handle(node: node)
func (t *table) wrongUse(node int32) int32 {
	return t.devs[t.pick(node)] // want handlesafety
}

// flatIndex shows the sanctioned pattern for flat-index arithmetic: the
// multiplication forgets the domain and the trailing coercion re-proves it.
//
//hypatia:handle(d: device)
func (t *table) flatIndex(d int32) int32 {
	slot := d*4 + t.head //hypatia:handle(ring-slot) flat ring addressing
	return t.rings[slot]
}

// unproven is the same arithmetic without the coercion: the lattice cannot
// type slot, and an untyped index into an annotated array is a finding.
//
//hypatia:handle(d: device)
func (t *table) unproven(d int32) int32 {
	slot := d * 4
	return t.rings[slot] // want handlesafety
}

// sweep shows the counting-loop coercion; no finding.
func (t *table) sweep() int32 {
	var n int32
	for i := int32(0); i < int32(len(t.devs)); i++ { //hypatia:handle(node)
		if t.devs[i] >= 0 {
			n++
		}
	}
	return n
}

// suppressed is a deliberate domain pun, excused with a tracked ignore.
//
//hypatia:handle(node: node)
func (t *table) suppressed(node int32) int32 {
	//lint:ignore handlesafety fixture exercises suppression tracking
	return t.queues[node]
}

// cleanButIgnored carries an ignore that matches nothing, so the directive
// itself is stale.
//
//hypatia:handle(node: node)
func (t *table) cleanButIgnored(node int32) int32 {
	//lint:ignore handlesafety stale by design // want staleignore
	return t.devs[node]
}

// badSpot shows a coercion that trails no store: it takes no effect and is
// reported as a misplaced directive.
func badSpot() int32 {
	return 3 //hypatia:handle(node) // want directive
}
