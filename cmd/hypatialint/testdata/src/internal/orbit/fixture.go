// Package orbitfix is a hypatialint fixture for the unitsafety check. Its
// directory path contains "internal/orbit", putting it inside the default
// unit scope; field names from the known-unit table (MeanAnomaly) resolve
// against this path too. Lines carrying a "want unitsafety" trailing
// comment must be flagged; unmarked lines must not be.
package orbitfix

import (
	"math"

	"hypatia/internal/geom"
)

// localSin never states a unit, but its parameter flows into a math.Sin
// sink, so the checker infers a radians expectation and flags callers that
// pass degrees — the interprocedural half of the check.
func localSin(angle float64) float64 {
	return math.Sin(angle)
}

// Bad exercises the intraprocedural positives.
func Bad(latDeg, lonRad float64) {
	_ = math.Sin(latDeg) // want unitsafety
	_ = geom.Rad(lonRad) // want unitsafety
	_ = latDeg + lonRad  // want unitsafety
	_ = localSin(latDeg) // want unitsafety
}

// BadCompare mixes units across a comparison.
func BadCompare(elevRad, minElDeg float64) bool {
	return elevRad > minElDeg // want unitsafety
}

type elementsFix struct {
	MeanAnomaly float64 // radians, per the known-unit field table
}

// BadFieldStore stores degrees into a field documented as radians.
func BadFieldStore(mDeg float64) elementsFix {
	return elementsFix{MeanAnomaly: mDeg} // want unitsafety
}

// BadLLA stores an unconverted latitude into geom.LLA.Lat (radians).
func BadLLA(latDeg, lonDeg float64) geom.LLA {
	return geom.LLA{Lat: latDeg, Lon: geom.Rad(lonDeg), Alt: 0} // want unitsafety
}

// Good shows the sanctioned patterns: convert before the sink, constant
// scaling keeps the unit without flagging, and a manual conversion by
// pi/180 makes the checker forget rather than misfire.
func Good(latDeg, lonRad float64) {
	_ = math.Sin(geom.Rad(latDeg))
	half := lonRad / 2
	_ = math.Sin(half)
	manual := latDeg * math.Pi / 180
	_ = math.Sin(manual)
	_ = geom.Deg(lonRad)
	_ = localSin(geom.Rad(latDeg))
	_ = math.Atan2(1, 2) + lonRad
}
