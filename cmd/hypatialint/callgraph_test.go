package main

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// buildRepoCallGraph loads internal/core (pulling its dependencies through
// the loader) and builds the call graph over everything loaded.
func buildRepoCallGraph(t *testing.T) *callGraph {
	t.Helper()
	l, err := newLoader(".")
	if err != nil {
		t.Fatalf("newLoader: %v", err)
	}
	if _, err := l.load(l.module + "/internal/core"); err != nil {
		t.Fatalf("load internal/core: %v", err)
	}
	var all []*pkg
	for _, p := range l.cache {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].path < all[j].path })
	return buildCallGraph(all)
}

// findFn locates a declared function/method by package-path suffix and name.
func findFn(t *testing.T, cg *callGraph, pathSuffix, name string) *types.Func {
	t.Helper()
	for fn := range cg.declOf {
		if fn.Name() == name && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), pathSuffix) {
			return fn
		}
	}
	t.Fatalf("function %s.%s not found in call graph", pathSuffix, name)
	return nil
}

func hasEdge(cg *callGraph, from, to cgKey, viaGo bool) bool {
	for _, e := range cg.edges[from] {
		if e.callee == to && e.viaGo == viaGo {
			return true
		}
	}
	return false
}

// TestCallGraphCrossPackage pins the resolution the locksafety and lifecycle
// checks depend on: the pipeline's launch edge is marked viaGo, the worker's
// helper call resolves, and the helper's pool acquisition resolves across
// the package boundary into internal/routing.
func TestCallGraphCrossPackage(t *testing.T) {
	cg := buildRepoCallGraph(t)
	newPipeline := findFn(t, cg, "internal/core", "newPipeline")
	worker := findFn(t, cg, "internal/core", "worker")
	helper := findFn(t, cg, "internal/core", "shortestPathPooled")
	empty := findFn(t, cg, "internal/routing", "Empty")

	if !hasEdge(cg, newPipeline, worker, true) {
		t.Error("newPipeline -> worker launch edge missing or not marked viaGo")
	}
	if hasEdge(cg, newPipeline, worker, false) {
		t.Error("worker must not appear as a plain callee of newPipeline")
	}
	if !hasEdge(cg, worker, helper, false) {
		t.Error("worker -> shortestPathPooled call edge missing")
	}
	if !hasEdge(cg, helper, empty, false) {
		t.Error("shortestPathPooled -> TablePool.Empty cross-package edge missing")
	}
}

// TestCallGraphReachability pins the side-splitting semantics of reach: the
// goroutine side follows launches transitively across packages; the
// event-loop side stops at go statements.
func TestCallGraphReachability(t *testing.T) {
	cg := buildRepoCallGraph(t)
	newPipeline := findFn(t, cg, "internal/core", "newPipeline")
	worker := findFn(t, cg, "internal/core", "worker")
	helper := findFn(t, cg, "internal/core", "shortestPathPooled")
	empty := findFn(t, cg, "internal/routing", "Empty")

	goSide := cg.reach([]cgKey{worker}, true)
	for _, want := range []*types.Func{worker, helper, empty} {
		if !goSide[want] {
			t.Errorf("goroutine side must reach %s", want.Name())
		}
	}

	loopView := cg.reach([]cgKey{newPipeline}, false)
	if loopView[worker] {
		t.Error("event-loop side crossed a go edge into worker")
	}
	launchView := cg.reach([]cgKey{newPipeline}, true)
	if !launchView[worker] || !launchView[empty] {
		t.Error("go-following traversal from newPipeline must reach worker and its pool acquisition")
	}
}

// TestCallGraphFuncLitGo verifies that a go-launched function literal gets a
// viaGo edge from its enclosing function (core.PartialForwardingTable fans
// out per-destination workers this way).
func TestCallGraphFuncLitGo(t *testing.T) {
	cg := buildRepoCallGraph(t)
	partial := findFn(t, cg, "internal/core", "PartialForwardingTable")
	found := false
	for _, e := range cg.edges[partial] {
		if _, isLit := e.callee.(*ast.FuncLit); isLit && e.viaGo {
			found = true
		}
	}
	if !found {
		t.Error("PartialForwardingTable must launch a function literal with a viaGo edge")
	}
}
