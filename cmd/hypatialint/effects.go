package main

// Interprocedural effect analysis: the engine behind the purity check.
//
// Every call-graph node (declared function, method, or function literal)
// gets an effect summary — a bitmask over the lattice below plus one witness
// per bit — computed bottom-up over the strongly connected components of the
// module-local call graph. Within an SCC the members iterate to a fixpoint;
// the lattice is a finite union, so the iteration is trivially bounded.
//
// The analysis distinguishes caller-owned mutation from shared mutation:
// writing through a parameter or receiver pointee (effMutatesPointee) is the
// arena contract the forwarding-state pipeline is built on — the caller
// hands the callee storage to fill — and does not disqualify purity by
// itself. It composes at call sites instead: passing package-level state to
// a pointee-writing callee is a global write in the caller.
//
// Unknown callees default to impure (effUnknownCall): dynamic calls through
// plain function values, interface methods, and standard-library functions
// without an entry in the summary table. Two escape hatches are deliberate
// and visible: a named function type annotated //hypatia:pure (values of
// that type are pure by documented contract — core.Strategy), and the usual
// //lint:ignore purity suppression at the finding site.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// effect is one bit of the effect lattice.
type effect uint32

const (
	effWritesGlobal   effect = 1 << iota // writes a package-level variable, directly or through an alias
	effReadsGlobal                       // reads a package-level variable that its own package mutates
	effTime                              // reads the wall clock (time.Now and friends)
	effRand                              // draws from the global math/rand source
	effIO                                // writes to a file, stream, or log
	effSpawn                             // launches a goroutine
	effChan                              // channel communication: send, receive, close, select
	effMapOrder                          // ranges over a map: iteration order leaks into results
	effUnknownCall                       // calls something the analysis cannot see
	effMutatesPointee                    // writes through a parameter/receiver pointee (caller-owned arena; composes at call sites)
)

// effImpure is the set of effects that disqualify a //hypatia:pure function.
// effMutatesPointee is excluded: arena filling is the pipeline's contract.
const effImpure = effWritesGlobal | effReadsGlobal | effTime | effRand |
	effIO | effSpawn | effChan | effMapOrder | effUnknownCall

// effectNames are the stable external names of the lattice bits, used in
// messages and in the persisted per-package fact files.
var effectNames = []struct {
	bit  effect
	name string
}{
	{effWritesGlobal, "writes-global"},
	{effReadsGlobal, "reads-mutable-global"},
	{effTime, "wall-clock"},
	{effRand, "global-rand"},
	{effIO, "io"},
	{effSpawn, "spawns-goroutine"},
	{effChan, "channel-io"},
	{effMapOrder, "map-order"},
	{effUnknownCall, "unknown-call"},
	{effMutatesPointee, "mutates-pointee"},
}

func (e effect) names() []string {
	var out []string
	for _, en := range effectNames {
		if e&en.bit != 0 {
			out = append(out, en.name)
		}
	}
	return out
}

// origin is the witness for one effect bit of one summary: what the
// primitive effect is, where it happens, and the call chain (callee names,
// outermost first) from the summarized function down to the site.
type origin struct {
	What  string
	Site  token.Position
	Chain []string
	// pos is where this effect surfaces in the summarized function itself —
	// the primitive site, or the local call site for inherited effects — so
	// findings always land inside the package under analysis.
	pos token.Pos
}

// describe renders the witness for a finding message, naming the full call
// chain starting from fn.
func (o origin) describe(fn string) string {
	chain := fn
	if len(o.Chain) > 0 {
		chain += " → " + strings.Join(o.Chain, " → ")
	}
	return fmt.Sprintf("%s at %s:%d (call chain: %s)", o.What, shortFile(o.Site.Filename), o.Site.Line, chain)
}

func shortFile(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[i+1:]
	}
	return name
}

// funcSummary is the computed effect summary of one call-graph node.
type funcSummary struct {
	mask    effect
	origins map[effect]origin
}

func (s *funcSummary) add(bit effect, o origin) bool {
	if s.mask&bit != 0 {
		return false
	}
	s.mask |= bit
	if s.origins == nil {
		s.origins = map[effect]origin{}
	}
	s.origins[bit] = o
	return true
}

// witness returns the origin of the lowest impure bit set in the summary.
func (s *funcSummary) witness() (origin, bool) {
	for _, en := range effectNames {
		if en.bit&effImpure != 0 && s.mask&en.bit != 0 {
			return s.origins[en.bit], true
		}
	}
	return origin{}, false
}

// effectAnalysis is the module-wide result: summaries per node plus the
// directive sets the purity check consumes.
type effectAnalysis struct {
	cg        *callGraph
	module    string
	summaries map[cgKey]*funcSummary
	// pureFns are the //hypatia:pure-annotated declared functions.
	pureFns map[*types.Func]bool
	// pureTypes are named function types annotated //hypatia:pure: calls
	// through values of such a type are pure by documented contract.
	pureTypes map[*types.TypeName]bool
	// pureIfaces are interface types annotated //hypatia:pure: their
	// methods are contract-pure at call sites, and every module-local
	// implementation must carry (and pass) the annotation.
	pureIfaces map[*types.TypeName]bool
	// pureIfaceList is pureIfaces in deterministic declaration order.
	pureIfaceList []*types.TypeName
	// mutableGlobals are package-level variables assigned (or having their
	// address taken) somewhere in their own package outside declarations.
	// Reads of other package-level variables are treated as constant loads.
	mutableGlobals map[*types.Var]bool
	// honored records the comment positions of //hypatia:pure directives
	// that actually took effect, so the purity check can flag directives
	// placed where the analysis ignores them.
	honored map[token.Pos]bool
	// conf is the confinement-annotation index, attached by lintPackages so
	// the driver can persist per-package confinement facts alongside the
	// effect summaries.
	conf *confIndex
	// handles is the handle/epoch annotation index, attached by lintPackages
	// for the same reason.
	handles *handleIndex
	// allocs is the allocation-effect analysis, attached by lintPackages so
	// the driver can persist per-package allocation classes.
	allocs *allocAnalysis
}

// pureDirective is the annotation marking a function (or a named function
// type) as part of the pipeline's checked purity contract.
const pureDirective = "//hypatia:pure"

// pureDirectiveIn returns the //hypatia:pure directive comment of a doc
// group (alone on a line, optionally followed by a rationale after a
// space), or nil.
func pureDirectiveIn(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if c.Text == pureDirective || strings.HasPrefix(c.Text, pureDirective+" ") {
			return c
		}
	}
	return nil
}

// analyzeEffects computes effect summaries for every node of the call graph,
// bottom-up over its strongly connected components.
func analyzeEffects(all []*pkg, cg *callGraph, module string) *effectAnalysis {
	an := &effectAnalysis{
		cg:             cg,
		module:         module,
		summaries:      map[cgKey]*funcSummary{},
		pureFns:        map[*types.Func]bool{},
		pureTypes:      map[*types.TypeName]bool{},
		pureIfaces:     map[*types.TypeName]bool{},
		mutableGlobals: map[*types.Var]bool{},
		honored:        map[token.Pos]bool{},
	}
	for _, p := range all {
		an.collectDirectives(p)
		an.collectMutableGlobals(p)
	}

	// Stable node order: packages are pre-sorted by path, funcsIn is file
	// order, so SCC discovery (and therefore witness selection) is
	// deterministic.
	var order []cgKey
	for _, p := range all {
		order = append(order, cg.funcsIn[p]...)
	}
	for _, scc := range sccOrder(order, cg) {
		an.solveSCC(scc)
	}
	return an
}

// collectDirectives records //hypatia:pure annotations on function
// declarations and named function type declarations.
func (an *effectAnalysis) collectDirectives(p *pkg) {
	for _, f := range p.files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if c := pureDirectiveIn(d.Doc); c != nil {
					if fn, ok := p.info.Defs[d.Name].(*types.Func); ok {
						an.pureFns[fn] = true
						an.honored[c.Pos()] = true
					}
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					c := pureDirectiveIn(ts.Doc)
					if c == nil && len(d.Specs) == 1 {
						c = pureDirectiveIn(d.Doc)
					}
					if c == nil {
						continue
					}
					tn, ok := p.info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					switch tn.Type().Underlying().(type) {
					case *types.Signature:
						an.pureTypes[tn] = true
						an.honored[c.Pos()] = true
					case *types.Interface:
						an.pureIfaces[tn] = true
						an.pureIfaceList = append(an.pureIfaceList, tn)
						an.honored[c.Pos()] = true
					}
				}
			}
		}
	}
}

// collectMutableGlobals marks every package-level variable of p that p
// itself assigns or aliases. Cross-package writes to exported variables are
// caught at the writer (effWritesGlobal) but do not flip the reader's view;
// this keeps a package's facts a function of itself and its dependencies,
// which the on-disk fact cache relies on.
func (an *effectAnalysis) collectMutableGlobals(p *pkg) {
	mark := func(e ast.Expr) {
		root, _ := writeRoot(p.info, e)
		id, ok := root.(*ast.Ident)
		if !ok {
			if sel, isSel := root.(*ast.SelectorExpr); isSel {
				id = sel.Sel
			} else {
				return
			}
		}
		if obj, ok := p.info.Uses[id].(*types.Var); ok && isPkgLevelVar(obj) && obj.Pkg() == p.types {
			an.mutableGlobals[obj] = true
		}
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					mark(n.X)
				}
			}
			return true
		})
	}
}

// isPkgLevelVar reports whether obj is a package-level variable (not a
// field, parameter, or local).
func isPkgLevelVar(obj *types.Var) bool {
	return obj != nil && !obj.IsField() && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// writeRoot walks an assignment target down to its base expression: p.f[i]
// and *p.f both root at p, while a qualified reference to another package's
// variable (pkg.Var) is its own root. deref reports whether the write goes
// through at least one indirection (field, index, or pointer), i.e. mutates
// a pointee rather than rebinding the root itself.
func writeRoot(info *types.Info, e ast.Expr) (root ast.Expr, deref bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e, deref = x.X, true
		case *ast.StarExpr:
			e, deref = x.X, true
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return x, deref
				}
			}
			e, deref = x.X, true
		default:
			return ast.Unparen(e), deref
		}
	}
}

// ---- SCC computation (Tarjan, iterative-enough for our depths) ----

// sccOrder returns the strongly connected components of the call graph in
// reverse topological order (callees before callers), following only plain
// call edges — go-launch edges contribute effSpawn at the launch site
// instead of inheriting the body's effects.
func sccOrder(order []cgKey, cg *callGraph) [][]cgKey {
	index := map[cgKey]int{}
	low := map[cgKey]int{}
	onStack := map[cgKey]bool{}
	var stack []cgKey
	var sccs [][]cgKey
	next := 0

	var strongconnect func(v cgKey)
	strongconnect = func(v cgKey) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range cg.edges[v] {
			if e.viaGo {
				continue
			}
			w := e.callee
			if _, hasBody := cg.body[w]; !hasBody {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []cgKey
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// solveSCC computes the summaries of one component to fixpoint. Summaries
// only grow, so re-walking members until nothing changes terminates within
// a handful of passes.
func (an *effectAnalysis) solveSCC(scc []cgKey) {
	inSCC := map[cgKey]bool{}
	for _, k := range scc {
		inSCC[k] = true
		if an.summaries[k] == nil {
			an.summaries[k] = &funcSummary{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range scc {
			fresh := an.scanNode(k, inSCC)
			cur := an.summaries[k]
			for _, en := range effectNames {
				if fresh.mask&en.bit != 0 && cur.add(en.bit, fresh.origins[en.bit]) {
					changed = true
				}
			}
		}
	}
}

// nodeName renders a call-graph node for witnesses and findings.
func (an *effectAnalysis) nodeName(k cgKey) string {
	switch k := k.(type) {
	case *types.Func:
		name := k.Name()
		if sig, ok := k.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, rn, ok := namedType(sig.Recv().Type()); ok {
				name = rn + "." + name
			}
		}
		if k.Pkg() != nil {
			path := k.Pkg().Path()
			if i := strings.LastIndex(path, "/"); i >= 0 {
				path = path[i+1:]
			}
			name = path + "." + name
		}
		return name
	case *ast.FuncLit:
		pos := an.cg.pkgOf[k].fset.Position(k.Pos())
		return fmt.Sprintf("func literal at %s:%d", shortFile(pos.Filename), pos.Line)
	}
	return "?"
}

// ---- per-node scan ----

// scanNode computes one node's effect mask from its body, composing callee
// summaries (provisional ones for same-SCC callees).
func (an *effectAnalysis) scanNode(k cgKey, inSCC map[cgKey]bool) *funcSummary {
	p := an.cg.pkgOf[k]
	body := an.cg.body[k]
	sum := &funcSummary{}
	if p == nil || body == nil {
		return sum
	}
	fs := &funcScan{an: an, p: p, body: body, sum: sum, inSCC: inSCC}
	fs.initParams(k)
	fs.solveTaint()
	fs.walk()
	// Effects of function literals defined in this body (but not launched
	// with go) fold into the definer: the literal runs on the definer's
	// frame whenever it runs at all, and tracking the values it flows
	// through is beyond the dynamic-call rules. Pointee mutation folds too:
	// a literal writing captured state mutates storage the definer answers
	// for.
	for _, e := range an.cg.edges[k] {
		lit, isLit := e.callee.(*ast.FuncLit)
		if !isLit || e.viaGo {
			continue
		}
		if ls := an.summaries[lit]; ls != nil {
			fs.inherit(ls, an.nodeName(lit), lit.Pos())
			if ls.mask&effMutatesPointee != 0 {
				sum.add(effMutatesPointee, ls.origins[effMutatesPointee])
			}
		}
	}
	return sum
}

func (an *effectAnalysis) pos(p *pkg, pos token.Pos) token.Position {
	return p.fset.Position(pos)
}

// taintClass tracks where a value's storage may live.
type taintClass uint8

const (
	taintLocal  taintClass = iota // fresh or frame-local storage
	taintParam                    // parameter/receiver pointees, captured outer frame
	taintGlobal                   // package-level storage (directly or via alias)
)

// funcScan is the per-node analysis state.
type funcScan struct {
	an    *effectAnalysis
	p     *pkg
	body  *ast.BlockStmt
	sum   *funcSummary
	inSCC map[cgKey]bool
	// trustPure makes calls to //hypatia:pure functions effect-free (their
	// contract is verified at their own declaration). Root-body scans set
	// it; the summary fixpoint does not, so summaries stay directive-free.
	trustPure bool

	params map[*types.Var]bool
	taints map[*types.Var]taintClass
	// closures maps local variables bound exactly once to a function literal
	// (and never reassigned or address-taken) to that literal. Calls through
	// such a variable are calls to the literal, whose effects already fold
	// into this node through its definition edge — not dynamic calls.
	closures map[*types.Var]*ast.FuncLit
}

func (fs *funcScan) initParams(k cgKey) {
	fs.params = map[*types.Var]bool{}
	fs.taints = map[*types.Var]taintClass{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := fs.p.info.Defs[name].(*types.Var); ok {
					fs.params[v] = true
				}
			}
		}
	}
	switch k := k.(type) {
	case *types.Func:
		decl := fs.an.cg.declOf[k]
		if decl != nil {
			addField(decl.Recv)
			addField(decl.Type.Params)
		}
	case *ast.FuncLit:
		addField(k.Type.Params)
	}
}

// classOf resolves the taint class of a variable reference.
func (fs *funcScan) classOf(obj *types.Var) taintClass {
	if isPkgLevelVar(obj) {
		// Loading a value-typed global yields a copy — local storage.
		// Pointerish globals alias package-level storage even when the
		// package never reassigns them (graph.Infinity is value-typed and
		// never written, so reading it is a constant load; a global slice
		// taints its readers so write-throughs still flag).
		if pointerish(obj.Type()) {
			return taintGlobal
		}
		return taintLocal
	}
	if t, ok := fs.taints[obj]; ok {
		return t
	}
	if fs.params[obj] {
		return taintParam
	}
	if obj.Pos() >= fs.body.Pos() && obj.Pos() <= fs.body.End() {
		return taintLocal
	}
	// Free variable captured from the enclosing function: caller-owned.
	return taintParam
}

// pointerish reports whether values of t can alias storage (contain a
// pointer, slice, map, channel, function, or interface anywhere).
func pointerish(t types.Type) bool {
	return pointerishSeen(t, map[types.Type]bool{})
}

func pointerishSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		// Strings are immutable: no writable aliasing.
		return u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return pointerishSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerishSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// exprTaint computes the taint class of an expression's value.
func (fs *funcScan) exprTaint(e ast.Expr) taintClass {
	if e == nil {
		return taintLocal
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := fs.p.info.Uses[e].(*types.Var); ok {
			return fs.classOf(obj)
		}
	case *ast.SelectorExpr:
		// Qualified reference to another package's variable.
		if obj, ok := fs.p.info.Uses[e.Sel].(*types.Var); ok && isPkgLevelVar(obj) {
			return fs.classOf(obj)
		}
		return fs.exprTaint(e.X)
	case *ast.IndexExpr:
		return fs.exprTaint(e.X)
	case *ast.IndexListExpr:
		return fs.exprTaint(e.X)
	case *ast.SliceExpr:
		return fs.exprTaint(e.X)
	case *ast.StarExpr:
		return fs.exprTaint(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fs.exprTaint(e.X)
		}
		return taintLocal
	case *ast.BinaryExpr:
		return maxTaint(fs.exprTaint(e.X), fs.exprTaint(e.Y))
	case *ast.CompositeLit:
		t := taintLocal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = maxTaint(t, fs.exprTaint(el))
		}
		return t
	case *ast.CallExpr:
		// A call result may alias whatever went in: max over the
		// arguments and the receiver base. (A pure callee cannot leak
		// globals it never touched, and impure callees are flagged
		// anyway, so this is the only aliasing a result can carry.)
		t := taintLocal
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := fs.p.info.Selections[sel]; isMethod {
				t = maxTaint(t, fs.exprTaint(sel.X))
			}
		}
		for _, a := range e.Args {
			t = maxTaint(t, fs.exprTaint(a))
		}
		return t
	case *ast.TypeAssertExpr:
		return fs.exprTaint(e.X)
	}
	return taintLocal
}

func maxTaint(a, b taintClass) taintClass {
	if a > b {
		return a
	}
	return b
}

// solveTaint propagates taint through the node's assignments to fixpoint.
// Flow-insensitive: a local ever assigned global-aliasing storage is
// global-tainted everywhere.
func (fs *funcScan) solveTaint() {
	type asg struct {
		obj *types.Var
		rhs ast.Expr
	}
	var asgs []asg
	record := func(lhs, rhs ast.Expr) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			obj, _ := fs.p.info.Defs[id].(*types.Var)
			if obj == nil {
				obj, _ = fs.p.info.Uses[id].(*types.Var)
			}
			if obj != nil && !isPkgLevelVar(obj) {
				asgs = append(asgs, asg{obj, rhs})
			}
		}
	}
	fs.shallowWalk(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if len(n.Rhs) == len(n.Lhs) {
					record(lhs, n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					record(lhs, n.Rhs[0])
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				record(n.Value, n.X)
			}
			if n.Key != nil {
				record(n.Key, nil)
			}
		}
	})
	for changed := true; changed; {
		changed = false
		for _, a := range asgs {
			t := fs.exprTaint(a.rhs)
			if t > fs.taints[a.obj] {
				fs.taints[a.obj] = t
				changed = true
			}
		}
	}
}

// shallowWalk visits the node's body without descending into nested
// function literals (they are separate call-graph nodes).
func (fs *funcScan) shallowWalk(visit func(ast.Node)) {
	bodyInspect(fs.body, visit)
}

// bodyInspect walks a whole function body (unlike shallowInspect, which is
// statement-shallow for the CFG) without entering nested literals.
func bodyInspect(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func (fs *funcScan) add(bit effect, what string, pos token.Pos) {
	fs.sum.add(bit, origin{What: what, Site: fs.an.pos(fs.p, pos), pos: pos})
}

// inherit folds a callee summary's impure bits into this node, extending
// the witness chain with the callee's name. callPos is the local call (or
// literal) site the inherited effects are attributed to.
func (fs *funcScan) inherit(callee *funcSummary, name string, callPos token.Pos) {
	for _, en := range effectNames {
		if en.bit&effImpure == 0 || callee.mask&en.bit == 0 {
			continue
		}
		o := callee.origins[en.bit]
		fs.sum.add(en.bit, origin{
			What:  o.What,
			Site:  o.Site,
			Chain: append([]string{name}, o.Chain...),
			pos:   callPos,
		})
	}
}

// collectClosures finds single-assignment local function-literal bindings.
// The scan covers nested literals too: a reassignment or &-take anywhere in
// the body disqualifies the variable.
func (fs *funcScan) collectClosures() {
	fs.closures = map[*types.Var]*ast.FuncLit{}
	assigns := map[*types.Var]int{}
	litOf := map[*types.Var]*ast.FuncLit{}
	unsafe := map[*types.Var]bool{}
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := fs.p.info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := fs.p.info.Uses[id].(*types.Var)
		return v
	}
	ast.Inspect(fs.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				v := varOf(lhs)
				if v == nil {
					continue
				}
				assigns[v]++
				if len(n.Rhs) == len(n.Lhs) {
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						litOf[v] = lit
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v := varOf(name)
				if v == nil {
					continue
				}
				assigns[v]++
				if i < len(n.Values) {
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						litOf[v] = lit
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := varOf(n.X); v != nil {
					unsafe[v] = true
				}
			}
		}
		return true
	})
	for v, lit := range litOf {
		if assigns[v] == 1 && !unsafe[v] {
			fs.closures[v] = lit
		}
	}
}

// walk performs the effect scan proper.
func (fs *funcScan) walk() {
	info := fs.p.info
	fs.collectClosures()
	fs.shallowWalk(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				fs.recordWrite(lhs)
			}
		case *ast.IncDecStmt:
			fs.recordWrite(n.X)
		case *ast.GoStmt:
			fs.add(effSpawn, "launches a goroutine", n.Pos())
		case *ast.SendStmt:
			fs.add(effChan, "sends on a channel", n.Pos())
		case *ast.SelectStmt:
			fs.add(effChan, "selects over channels", n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fs.add(effChan, "receives from a channel", n.Pos())
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				fs.add(effMapOrder, "ranges over a map (iteration order is randomized per run)", n.Pos())
			case *types.Chan:
				fs.add(effChan, "ranges over a channel", n.Pos())
			}
		case *ast.Ident:
			if obj, ok := info.Uses[n].(*types.Var); ok && isPkgLevelVar(obj) && fs.an.mutableGlobals[obj] {
				fs.add(effReadsGlobal, fmt.Sprintf("reads mutable package-level variable %s", obj.Name()), n.Pos())
			}
		case *ast.CallExpr:
			fs.scanCall(n)
		}
	})
}

// recordWrite classifies one assignment target.
func (fs *funcScan) recordWrite(lhs ast.Expr) {
	root, deref := writeRoot(fs.p.info, lhs)
	switch r := root.(type) {
	case *ast.Ident:
		obj, ok := fs.p.info.Uses[r].(*types.Var)
		if !ok {
			if obj, ok = fs.p.info.Defs[r].(*types.Var); !ok {
				return
			}
		}
		if isPkgLevelVar(obj) {
			fs.add(effWritesGlobal, fmt.Sprintf("writes package-level variable %s", obj.Name()), lhs.Pos())
			return
		}
		if !deref {
			// Rebinding the variable itself. A parameter or body-local
			// rebind touches only this frame; a captured outer variable
			// lives in the enclosing (caller-owned) frame.
			if !fs.params[obj] && !(obj.Pos() >= fs.body.Pos() && obj.Pos() <= fs.body.End()) {
				fs.sum.add(effMutatesPointee, origin{What: fmt.Sprintf("writes captured variable %s", obj.Name()), Site: fs.an.pos(fs.p, lhs.Pos())})
			}
			return
		}
		switch fs.classOf(obj) {
		case taintGlobal:
			fs.add(effWritesGlobal, fmt.Sprintf("writes package-level state through alias %s", obj.Name()), lhs.Pos())
		case taintParam:
			fs.sum.add(effMutatesPointee, origin{What: "writes a caller-owned pointee", Site: fs.an.pos(fs.p, lhs.Pos())})
		}
	case *ast.SelectorExpr:
		// Qualified write to another package's variable.
		if obj, ok := fs.p.info.Uses[r.Sel].(*types.Var); ok && isPkgLevelVar(obj) {
			fs.add(effWritesGlobal, fmt.Sprintf("writes package-level variable %s.%s", obj.Pkg().Name(), obj.Name()), lhs.Pos())
		}
	default:
		switch fs.exprTaint(root) {
		case taintGlobal:
			fs.add(effWritesGlobal, "writes package-level state through an aliasing expression", lhs.Pos())
		case taintParam:
			fs.sum.add(effMutatesPointee, origin{What: "writes a caller-owned pointee", Site: fs.an.pos(fs.p, lhs.Pos())})
		}
	}
}

// scanCall classifies one call expression.
func (fs *funcScan) scanCall(call *ast.CallExpr) {
	info := fs.p.info
	fun := ast.Unparen(call.Fun)

	// Conversions are value operations, not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	// Immediately invoked literals: the literal's effects are folded into
	// this node through its definition edge.
	if _, isLit := fun.(*ast.FuncLit); isLit {
		return
	}
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			fs.scanBuiltin(b.Name(), call)
			return
		}
	}

	callee := resolveCallee(info, call)
	if callee == nil {
		// A call through a variable bound once to a function literal is a
		// call to that literal. Its interior effects fold in through the
		// definition edge; only the pointee composition applies here.
		if id, ok := fun.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if lit := fs.closures[v]; lit != nil {
					sum := fs.an.summaries[lit]
					if sum == nil || sum.mask&effMutatesPointee != 0 {
						fs.composePointeeWrite(call, fs.an.nodeName(lit))
					}
					return
				}
			}
		}
		// Dynamic call: allowed only through a function type whose
		// declaration carries //hypatia:pure (the documented contract,
		// e.g. core.Strategy).
		if named, ok := info.TypeOf(call.Fun).(*types.Named); ok && fs.an.pureTypes[named.Obj()] {
			return
		}
		fs.add(effUnknownCall, fmt.Sprintf("calls %s dynamically (not through a //hypatia:pure function type)", exprLabel(call.Fun)), call.Pos())
		return
	}

	if _, hasBody := fs.an.cg.body[callee]; hasBody {
		sum := fs.an.summaries[callee]
		mutates := sum == nil || sum.mask&effMutatesPointee != 0 || fs.inSCC[callee]
		// In trustPure mode (root-body scans), an annotated callee's
		// interior effects are its own contract, verified at its
		// declaration; only the pointee composition still applies here.
		if sum != nil && !(fs.trustPure && fs.an.pureFns[callee]) {
			fs.inherit(sum, fs.an.nodeName(callee), call.Pos())
		}
		if mutates {
			fs.composePointeeWrite(call, fs.an.nodeName(callee))
		}
		return
	}

	// A method of a //hypatia:pure interface is pure by contract; the
	// purity check verifies every module-local implementation.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := sig.Recv().Type().(*types.Named); ok {
			if _, isIface := named.Underlying().(*types.Interface); isIface && fs.an.pureIfaces[named.Obj()] {
				return
			}
		}
	}
	if callee.Pkg() == nil {
		// Universe-scope interface method (error.Error).
		fs.add(effUnknownCall, fmt.Sprintf("calls %s dynamically (interface method)", callee.Name()), call.Pos())
		return
	}
	if callee.Pkg().Path() == fs.an.module || strings.HasPrefix(callee.Pkg().Path(), fs.an.module+"/") {
		// Module-local but bodyless: an interface method.
		fs.add(effUnknownCall, fmt.Sprintf("calls interface method %s (callee unknown)", callee.Name()), call.Pos())
		return
	}
	fs.scanStdCall(call, callee)
}

// composePointeeWrite applies the call-site composition rule for a callee
// that writes through its parameters: handing it package-level state is a
// global write here; handing it our own parameters propagates the pointee
// bit.
func (fs *funcScan) composePointeeWrite(call *ast.CallExpr, name string) {
	t := taintLocal
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := fs.p.info.Selections[sel]; isMethod {
			t = maxTaint(t, fs.exprTaint(sel.X))
		}
	}
	for _, a := range call.Args {
		t = maxTaint(t, fs.exprTaint(a))
	}
	switch t {
	case taintGlobal:
		fs.add(effWritesGlobal, fmt.Sprintf("passes package-level state to %s, which writes through its parameters", name), call.Pos())
	case taintParam:
		fs.sum.add(effMutatesPointee, origin{What: "forwards caller-owned storage to a pointee-writing callee", Site: fs.an.pos(fs.p, call.Pos())})
	}
}

// scanBuiltin handles the builtins with write or IO semantics.
func (fs *funcScan) scanBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "append", "copy", "delete", "clear":
		if len(call.Args) == 0 {
			return
		}
		switch fs.exprTaint(call.Args[0]) {
		case taintGlobal:
			fs.add(effWritesGlobal, fmt.Sprintf("%s mutates package-level storage", name), call.Pos())
		case taintParam:
			if name != "append" {
				// append(x, ...) rebinds; the caller sees the mutation
				// only through the returned slice, which the assignment
				// rules track.
				fs.sum.add(effMutatesPointee, origin{What: name + " mutates a caller-owned buffer", Site: fs.an.pos(fs.p, call.Pos())})
			}
		}
	case "close":
		fs.add(effChan, "closes a channel", call.Pos())
	case "print", "println":
		fs.add(effIO, "writes to stderr via builtin "+name, call.Pos())
	}
}

// scanStdCall applies the standard-library summary table.
func (fs *funcScan) scanStdCall(call *ast.CallExpr, callee *types.Func) {
	mask, mutates, known := stdSummary(callee)
	if !known {
		fs.add(effUnknownCall, fmt.Sprintf("calls %s (no purity summary for this standard-library function)", stdLabel(callee)), call.Pos())
		return
	}
	for _, en := range effectNames {
		if mask&en.bit != 0 {
			fs.add(en.bit, fmt.Sprintf("calls %s (%s)", stdLabel(callee), en.name), call.Pos())
		}
	}
	if mutates {
		fs.composePointeeWrite(call, stdLabel(callee))
	}
}

func stdLabel(fn *types.Func) string {
	path := fn.Pkg().Path()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, rn, ok := namedType(sig.Recv().Type()); ok {
			return path + "." + rn + "." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}

func exprLabel(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return s
}

// purePkgs are standard-library packages whose every function is free of
// the effects the lattice tracks (pure value computation).
var purePkgs = map[string]bool{
	"math": true, "math/bits": true, "math/cmplx": true,
	"strconv": true, "unicode": true, "unicode/utf8": true, "unicode/utf16": true,
	"errors": true,
}

// pureStdFuncs are individually whitelisted standard-library functions.
var pureStdFuncs = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true, "fmt.Errorf": true,
	"sort.SearchInts": true, "sort.SearchFloat64s": true, "sort.SearchStrings": true,
	"sort.IntsAreSorted": true, "sort.Float64sAreSorted": true, "sort.StringsAreSorted": true,
	"slices.Equal": true, "slices.Index": true, "slices.Contains": true,
	"slices.Max": true, "slices.Min": true, "slices.Clone": true, "slices.BinarySearch": true,
	"cmp.Compare": true, "cmp.Less": true, "cmp.Or": true,
}

// mutatingStdFuncs write through their arguments (or receiver) but have no
// other effect; the call-site composition rule decides whether that is a
// caller-owned or global mutation.
var mutatingStdFuncs = map[string]bool{
	"sort.Ints": true, "sort.Float64s": true, "sort.Strings": true,
	"slices.Sort": true, "slices.Reverse": true,
}

// stdSummary returns the effect summary of a standard-library function:
// mask (effects regardless of arguments), mutates (writes through receiver
// or pointer arguments), and whether the function is known at all.
func stdSummary(fn *types.Func) (mask effect, mutates bool, known bool) {
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	switch path {
	case "time":
		if !isMethod && wallClockFuncs[fn.Name()] {
			return effTime, false, true
		}
		return 0, false, true // Duration/Time value methods and constructors
	case "math/rand", "math/rand/v2":
		if isMethod {
			return 0, true, true // explicitly seeded generators mutate their own state
		}
		if seededRandCtors[fn.Name()] {
			return 0, false, true
		}
		return effRand, false, true
	case "sync":
		if isMethod {
			return 0, false, true // lock ordering is scheduling, not data; the guarded data has its own rules
		}
		return 0, false, false
	case "sync/atomic":
		return 0, true, true
	case "strings":
		if isMethod {
			return 0, true, true // Builder/Reader methods mutate their receiver
		}
		return 0, false, true
	case "fmt":
		if pureStdFuncs["fmt."+fn.Name()] {
			return 0, false, true
		}
		if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
			return effIO, false, true
		}
		return 0, false, false
	case "os", "io", "bufio", "log", "net", "net/http", "path/filepath":
		return effIO, false, true
	}
	if purePkgs[path] {
		return 0, false, true
	}
	key := path + "." + fn.Name()
	if pureStdFuncs[key] {
		return 0, false, true
	}
	if mutatingStdFuncs[key] {
		return 0, true, true
	}
	return 0, false, false
}

// serializableEffects renders the summaries of one package's declared
// functions for the on-disk fact cache (debugging and tooling surface; the
// cache's correctness does not depend on them).
func (an *effectAnalysis) serializableEffects(p *pkg) map[string][]string {
	out := map[string][]string{}
	for _, k := range an.cg.funcsIn[p] {
		fn, ok := k.(*types.Func)
		if !ok {
			continue
		}
		if sum := an.summaries[k]; sum != nil && sum.mask != 0 {
			out[an.nodeName(fn)] = sum.mask.names()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
