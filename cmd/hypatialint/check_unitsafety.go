package main

// The unitsafety check: taint-style propagation of physical units through
// the orbit-math packages. PR 1's timeunits check flags raw conversions at
// the sim.Time boundary; this family follows the VALUES — a degrees-tainted
// float that reaches a radians sink three assignments later is reported even
// though every individual statement looks innocent.
//
// Unit sources (taint introduction):
//   - geom.Rad(x) yields radians, geom.Deg(x) yields degrees
//   - math.Asin/Acos/Atan/Atan2 yield radians
//   - known fields: orbit.Elements angles, geom.LLA.Lat/Lon, geom.
//     Topocentric.Elevation/Azimuth are radians; *Deg-suffixed fields are
//     degrees; orbit.Elements.SemiMajorAxis, geom.LLA.Alt, geom.EarthRadius,
//     and geom.Vec3.Distance/Norm results are meters; *Km suffixes are
//     kilometers; sim.Time.Seconds() yields seconds
//   - identifier suffixes: ...Deg/"deg" degrees, ...Rad/"rad" radians,
//     ...Km/"km" kilometers
//
// Unit sinks (taint consumption): math.Sin/Cos/Tan and geom.Deg want
// radians; geom.Rad wants degrees; sim.Seconds wants seconds; stores into
// known-unit fields want that field's unit. On top of the builtin table the
// check infers expectations for module-local parameters over the call graph:
// a parameter that flows into a radians sink makes every call site a radians
// sink too, iterated to fixpoint, so passing degrees to orbit.Circular is
// caught two packages away from any trig call.
//
// Findings: a known-unit value reaching a sink expecting a different unit,
// and +/-/comparison expressions mixing two different known units.
// Propagation is deliberately conservative: joins of different units forget
// (no finding), multiplication by a non-constant forgets, and scaling by a
// recognized conversion factor (pi/180, 180/pi, 1000) forgets too — so a
// manual `rad * 180 / math.Pi` conversion leaves the checker silent rather
// than wrong, while `theta / 2` stays radians.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strings"
)

type unit uint8

const (
	unitNone unit = iota
	unitRad
	unitDeg
	unitMeters
	unitKm
	unitSeconds
)

func (u unit) String() string {
	switch u {
	case unitRad:
		return "radians"
	case unitDeg:
		return "degrees"
	case unitMeters:
		return "meters"
	case unitKm:
		return "kilometers"
	case unitSeconds:
		return "seconds"
	}
	return "unknown"
}

// unitVal is the abstract value of an expression: a concrete unit (or
// unitNone) plus the set of enclosing-function parameters that taint it
// (used only for expectation inference).
type unitVal struct {
	u    unit
	mask uint64
}

type unitFact map[types.Object]unitVal

var unitLattice = flowLattice[unitFact]{
	bottom: func() unitFact { return unitFact{} },
	clone: func(f unitFact) unitFact {
		c := make(unitFact, len(f))
		for k, v := range f {
			c[k] = v
		}
		return c
	},
	join: func(dst, src unitFact) unitFact {
		for k, v := range src {
			cur, ok := dst[k]
			if !ok {
				dst[k] = v
				continue
			}
			if cur.u != v.u {
				cur.u = unitNone // disagreement across paths: forget
			}
			cur.mask |= v.mask
			dst[k] = cur
		}
		return dst
	},
	equal: func(a, b unitFact) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	},
}

// unitSummaries holds the interprocedural state: per-function parameter
// expectations and return units, refined to fixpoint over the call graph.
type unitSummaries struct {
	expect     map[*types.Func][]unit
	expectConf map[*types.Func]uint64 // params with conflicting expectations
	ret        map[*types.Func]unit
	retConf    map[*types.Func]bool
	changed    bool
}

func (s *unitSummaries) propose(fn *types.Func, idx int, u unit) {
	if fn == nil || u == unitNone || idx >= 64 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return
	}
	if s.expect[fn] == nil {
		s.expect[fn] = make([]unit, sig.Params().Len())
	}
	if s.expectConf[fn]&(1<<idx) != 0 {
		return
	}
	switch cur := s.expect[fn][idx]; {
	case cur == unitNone:
		s.expect[fn][idx] = u
		s.changed = true
	case cur != u:
		s.expect[fn][idx] = unitNone
		s.expectConf[fn] |= 1 << idx
		s.changed = true
	}
}

func (s *unitSummaries) proposeRet(fn *types.Func, u unit) {
	if fn == nil || u == unitNone || s.retConf[fn] {
		return
	}
	switch cur := s.ret[fn]; {
	case cur == unitNone:
		s.ret[fn] = u
		s.changed = true
	case cur != u:
		s.ret[fn] = unitNone
		s.retConf[fn] = true
		s.changed = true
	}
}

// expectation returns the inferred unit for fn's idx-th parameter.
func (s *unitSummaries) expectation(fn *types.Func, idx int) unit {
	if e := s.expect[fn]; idx < len(e) {
		return e[idx]
	}
	return unitNone
}

// checkUnitSafetyPkgs runs the unitsafety family. Summaries are computed
// over every loaded package inside the unit scope (so linting one package
// still sees its in-scope dependencies' parameter expectations); findings
// are reported only for the lint targets.
func checkUnitSafetyPkgs(targets, all []*pkg, cfg config, rep *reporter) {
	var scopeAll, scopeTargets []*pkg
	seen := map[*pkg]bool{}
	for _, p := range all {
		if inSimScope(p.path, cfg.unitScope) && !seen[p] {
			seen[p] = true
			scopeAll = append(scopeAll, p)
		}
	}
	for _, p := range targets {
		if inSimScope(p.path, cfg.unitScope) {
			scopeTargets = append(scopeTargets, p)
			if !seen[p] {
				seen[p] = true
				scopeAll = append(scopeAll, p)
			}
		}
	}
	if len(scopeTargets) == 0 {
		return
	}
	sums := &unitSummaries{
		expect:     map[*types.Func][]unit{},
		expectConf: map[*types.Func]uint64{},
		ret:        map[*types.Func]unit{},
		retConf:    map[*types.Func]bool{},
	}
	// Phase A: infer parameter expectations and return units to fixpoint.
	for iter := 0; iter < 10; iter++ {
		sums.changed = false
		for _, p := range scopeAll {
			forEachFuncDecl(p, func(fd *ast.FuncDecl) {
				analyzeUnitsFunc(p, fd, sums, nil)
			})
		}
		if !sums.changed {
			break
		}
	}
	// Phase B: report against the converged summaries.
	for _, p := range scopeTargets {
		rp := rep
		forEachFuncDecl(p, func(fd *ast.FuncDecl) {
			analyzeUnitsFunc(p, fd, sums, rp)
		})
	}
}

// forEachFuncDecl visits the package's function declarations (literals are
// analyzed as part of their enclosing function here: a literal's body is in
// its own CFG, so it is visited separately with no parameter mask).
func forEachFuncDecl(p *pkg, fn func(fd *ast.FuncDecl)) {
	for _, f := range p.files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// analyzeUnitsFunc runs the unit dataflow over one declaration and the
// literals it contains. rep == nil means summary (inference) mode.
func analyzeUnitsFunc(p *pkg, fd *ast.FuncDecl, sums *unitSummaries, rep *reporter) {
	fn, _ := p.info.Defs[fd.Name].(*types.Func)
	if fn == nil || isUnitConverter(fn) {
		// geom.Rad / geom.Deg are the converters themselves: their bodies
		// mix units by design and their behavior is built into the checker.
		return
	}
	uc := &unitChecker{p: p, sums: sums, fn: fn, params: map[*types.Var]int{}}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			uc.params[sig.Params().At(i)] = i
		}
	}
	bodies := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	for _, body := range bodies {
		g := buildCFG(body, p.info)
		if g.unstructured {
			continue
		}
		isDeclBody := body == fd.Body
		xfer := func(f unitFact, n ast.Node, emit func(ast.Node, string, string)) unitFact {
			return uc.transfer(f, n, isDeclBody, emit)
		}
		in := forwardDataflow(g, unitLattice, unitFact{}, xfer)
		if rep != nil {
			emit := func(n ast.Node, check, msg string) { rep.add(n.Pos(), check, msg) }
			replayDataflow(g, unitLattice, in, xfer, emit)
		} else {
			replayDataflow(g, unitLattice, in, xfer, nil)
		}
	}
}

type unitChecker struct {
	p      *pkg
	sums   *unitSummaries
	fn     *types.Func
	params map[*types.Var]int
}

// transfer advances the unit fact across one CFG node. inDecl is false
// inside function literals, whose returns do not feed fn's return summary.
func (uc *unitChecker) transfer(f unitFact, n ast.Node, inDecl bool, emit func(ast.Node, string, string)) unitFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		var vals []unitVal
		for _, rhs := range n.Rhs {
			vals = append(vals, uc.eval(f, rhs, emit))
		}
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for i, lhs := range n.Lhs {
				v := unitVal{}
				if len(n.Lhs) == len(n.Rhs) {
					v = vals[i]
				}
				uc.store(f, lhs, v, emit)
			}
		} else {
			// Compound assignment: x op= y.
			for i, lhs := range n.Lhs {
				cur := uc.eval(f, lhs, nil) // lhs read; no second report pass
				rhs := unitVal{}
				if i < len(vals) {
					rhs = vals[i]
				}
				res := cur
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN:
					uc.checkMix(cur, rhs, n, emit)
					if res.u == unitNone {
						res.u = rhs.u
					}
					res.mask |= rhs.mask
				case token.MUL_ASSIGN, token.QUO_ASSIGN:
					if !uc.isConst(n.Rhs[i]) || uc.isConversionFactor(n.Rhs[i]) {
						res = unitVal{}
					}
				default:
					res = unitVal{}
				}
				uc.store(f, lhs, res, emit)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			v := uc.eval(f, r, emit)
			if inDecl && len(n.Results) == 1 && isFloat(uc.p.info.TypeOf(r)) {
				uc.sums.proposeRet(uc.fn, v.u)
			}
		}
	case *ast.RangeStmt:
		uc.eval(f, n.X, emit)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e != nil {
				uc.store(f, e, unitVal{}, nil)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v := unitVal{}
					if i < len(vs.Values) {
						v = uc.eval(f, vs.Values[i], emit)
					}
					uc.store(f, name, v, emit)
				}
			}
		}
	case *ast.IncDecStmt:
		uc.eval(f, n.X, emit)
	case *ast.SendStmt:
		uc.eval(f, n.Chan, emit)
		uc.eval(f, n.Value, emit)
	case *ast.ExprStmt:
		uc.eval(f, n.X, emit)
	case *ast.GoStmt:
		uc.eval(f, n.Call, emit)
	case *ast.DeferStmt:
		uc.eval(f, n.Call, emit)
	case ast.Expr:
		uc.eval(f, n, emit)
	case *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// no expressions
	default:
		// TypeSwitch assign and other stray statements: evaluate contained
		// expressions shallowly for sink coverage.
		shallowInspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				uc.eval(f, call, emit)
				return false
			}
			return true
		})
	}
	return f
}

// store writes a value into an assignable expression: identifiers update the
// fact; known-unit field stores are checked as sinks.
func (uc *unitChecker) store(f unitFact, lhs ast.Expr, v unitVal, emit func(ast.Node, string, string)) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := uc.p.info.Defs[lhs]
		if obj == nil {
			obj = uc.p.info.Uses[lhs]
		}
		if obj == nil {
			return
		}
		if !isFloat(obj.Type()) {
			return
		}
		f[obj] = v
	case *ast.SelectorExpr:
		if field, ok := uc.p.info.Uses[lhs.Sel].(*types.Var); ok && field.IsField() {
			if want := fieldUnit(field); want != unitNone {
				uc.sink(v, want, lhs, fmt.Sprintf("store into %s field %s", want, field.Name()), emit)
			}
		}
	}
}

// eval computes the abstract unit value of an expression, reporting sink
// mismatches and unit mixing along the way when emit is non-nil.
func (uc *unitChecker) eval(f unitFact, e ast.Expr, emit func(ast.Node, string, string)) unitVal {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return uc.eval(f, e.X, emit)
	case *ast.Ident:
		obj := uc.p.info.Uses[e]
		if obj == nil {
			obj = uc.p.info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || !isFloat(v.Type()) {
			return unitVal{}
		}
		if val, tracked := f[obj]; tracked {
			return val
		}
		if u := suffixUnit(v.Name()); u != unitNone {
			return unitVal{u: u}
		}
		if idx, isParam := uc.params[v]; isParam && idx < 64 {
			return unitVal{mask: 1 << idx}
		}
		return unitVal{}
	case *ast.SelectorExpr:
		if field, ok := uc.p.info.Uses[e.Sel].(*types.Var); ok && field.IsField() {
			uc.eval(f, e.X, emit)
			return unitVal{u: fieldUnit(field)}
		}
		if c, ok := uc.p.info.Uses[e.Sel].(*types.Const); ok {
			return unitVal{u: constUnit(c)}
		}
		return unitVal{}
	case *ast.CallExpr:
		return uc.evalCall(f, e, emit)
	case *ast.BinaryExpr:
		l := uc.eval(f, e.X, emit)
		r := uc.eval(f, e.Y, emit)
		switch e.Op {
		case token.ADD, token.SUB:
			uc.checkMix(l, r, e, emit)
			uc.inferFromPair(l, r)
			res := l
			if res.u == unitNone {
				res.u = r.u
			}
			res.mask |= r.mask
			return res
		case token.MUL, token.QUO:
			// Scaling by a constant keeps the unit (2*theta is still
			// radians) — unless the constant is a recognized conversion
			// factor (pi/180, 180/pi, 1000, ...), in which case the author
			// is converting manually and the checker forgets the unit
			// rather than flagging the converted value downstream.
			// Multiplying two runtime values forgets it too.
			if uc.isConst(e.Y) {
				if uc.isConversionFactor(e.Y) {
					return unitVal{mask: l.mask}
				}
				return l
			}
			if uc.isConst(e.X) && e.Op == token.MUL {
				if uc.isConversionFactor(e.X) {
					return unitVal{mask: r.mask}
				}
				return r
			}
			return unitVal{}
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			uc.checkMix(l, r, e, emit)
			uc.inferFromPair(l, r)
			return unitVal{}
		}
		return unitVal{}
	case *ast.UnaryExpr:
		v := uc.eval(f, e.X, emit)
		if e.Op == token.SUB || e.Op == token.ADD {
			return v
		}
		return unitVal{}
	case *ast.IndexExpr:
		uc.eval(f, e.X, emit)
		uc.eval(f, e.Index, emit)
		return unitVal{}
	case *ast.CompositeLit:
		uc.evalCompositeLit(f, e, emit)
		return unitVal{}
	case *ast.StarExpr:
		uc.eval(f, e.X, emit)
		return unitVal{}
	case *ast.TypeAssertExpr:
		uc.eval(f, e.X, emit)
		return unitVal{}
	case *ast.SliceExpr:
		uc.eval(f, e.X, emit)
		return unitVal{}
	case *ast.FuncLit:
		return unitVal{} // analyzed as its own CFG
	}
	return unitVal{}
}

// evalCompositeLit checks stores into known-unit struct fields, both keyed
// and positional.
func (uc *unitChecker) evalCompositeLit(f unitFact, lit *ast.CompositeLit, emit func(ast.Node, string, string)) {
	t := uc.p.info.TypeOf(lit)
	var st *types.Struct
	if t != nil {
		if s, ok := t.Underlying().(*types.Struct); ok {
			st = s
		}
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				if fv, ok := uc.p.info.Uses[id].(*types.Var); ok && fv.IsField() {
					field = fv
				}
			}
		} else if st != nil && i < st.NumFields() {
			field = st.Field(i)
		}
		v := uc.eval(f, value, emit)
		if field != nil {
			if want := fieldUnit(field); want != unitNone {
				uc.sink(v, want, value, fmt.Sprintf("store into %s field %s", want, field.Name()), emit)
			}
		}
	}
}

// evalCall handles conversions, the builtin source/sink table, and
// module-local calls with inferred parameter expectations.
func (uc *unitChecker) evalCall(f unitFact, call *ast.CallExpr, emit func(ast.Node, string, string)) unitVal {
	// Type conversions (float64(x) and friends) keep the operand's unit.
	if tv, ok := uc.p.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return uc.eval(f, call.Args[0], emit)
	}
	fn := resolveCallee(uc.p.info, call)
	if fn == nil {
		for _, a := range call.Args {
			uc.eval(f, a, emit)
		}
		return unitVal{}
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	arg := func(i int) unitVal {
		if i < len(call.Args) {
			return uc.eval(f, call.Args[i], emit)
		}
		return unitVal{}
	}
	// Builtin converter/source/sink table.
	if strings.HasSuffix(pkgPath, "internal/geom") && sig != nil && sig.Recv() == nil {
		switch fn.Name() {
		case "Rad":
			uc.sink(arg(0), unitDeg, call, "geom.Rad converts degrees to radians", emit)
			return unitVal{u: unitRad}
		case "Deg":
			uc.sink(arg(0), unitRad, call, "geom.Deg converts radians to degrees", emit)
			return unitVal{u: unitDeg}
		}
	}
	if pkgPath == "math" {
		switch fn.Name() {
		case "Sin", "Cos", "Tan", "Sincos":
			uc.sink(arg(0), unitRad, call, "math."+fn.Name()+" takes radians", emit)
			for i := 1; i < len(call.Args); i++ {
				arg(i)
			}
			return unitVal{}
		case "Asin", "Acos", "Atan":
			arg(0)
			return unitVal{u: unitRad}
		case "Atan2":
			arg(0)
			arg(1)
			return unitVal{u: unitRad}
		case "Abs", "Mod", "Remainder", "Floor", "Ceil", "Round", "Max", "Min":
			v := arg(0)
			for i := 1; i < len(call.Args); i++ {
				arg(i)
			}
			return unitVal{u: v.u, mask: v.mask}
		}
	}
	if strings.HasSuffix(pkgPath, "internal/sim") {
		if sig != nil && sig.Recv() == nil && fn.Name() == "Seconds" {
			uc.sink(arg(0), unitSeconds, call, "sim.Seconds takes seconds", emit)
			return unitVal{}
		}
		if sig != nil && sig.Recv() != nil && fn.Name() == "Seconds" {
			uc.eval(f, call.Fun, emit)
			return unitVal{u: unitSeconds}
		}
	}
	if sig != nil && sig.Recv() != nil && strings.HasSuffix(pkgPath, "internal/geom") {
		if _, recv, ok := namedType(sig.Recv().Type()); ok && recv == "Vec3" &&
			(fn.Name() == "Distance" || fn.Name() == "Norm") {
			for i := range call.Args {
				arg(i)
			}
			return unitVal{u: unitMeters}
		}
	}
	// Module-local call: check arguments against inferred expectations and
	// record expectations induced by tainted parameters of the caller.
	for i := range call.Args {
		v := arg(i)
		want := uc.sums.expectation(fn, i)
		if want != unitNone {
			uc.sink(v, want, call.Args[i],
				fmt.Sprintf("parameter %d of %s expects %s", i, fn.Name(), want), emit)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		uc.eval(f, sel.X, nil) // receiver sub-expressions, once, silently
	}
	return unitVal{u: uc.sums.ret[fn]}
}

// sink checks a value arriving where `want` is expected: a different known
// unit is a finding; an unknown value tainted by caller parameters records
// an expectation for those parameters.
func (uc *unitChecker) sink(v unitVal, want unit, at ast.Node, what string, emit func(ast.Node, string, string)) {
	if v.u != unitNone && v.u != want {
		if emit != nil {
			emit(at, checkUnitSafety, fmt.Sprintf("%s value reaches a %s sink (%s)", v.u, want, what))
		}
		return
	}
	if v.u == unitNone {
		uc.inferMask(v.mask, want)
	}
}

// checkMix reports additive/comparative mixing of two different known units.
func (uc *unitChecker) checkMix(l, r unitVal, at ast.Node, emit func(ast.Node, string, string)) {
	if l.u != unitNone && r.u != unitNone && l.u != r.u && emit != nil {
		emit(at, checkUnitSafety, fmt.Sprintf("expression mixes %s and %s", l.u, r.u))
	}
}

// inferFromPair records expectations when one operand has a known unit and
// the other is parameter-tainted (adding meters to a parameter makes the
// parameter meters).
func (uc *unitChecker) inferFromPair(l, r unitVal) {
	if l.u != unitNone && r.u == unitNone {
		uc.inferMask(r.mask, l.u)
	}
	if r.u != unitNone && l.u == unitNone {
		uc.inferMask(l.mask, r.u)
	}
}

func (uc *unitChecker) inferMask(mask uint64, want unit) {
	for idx := 0; mask != 0; idx++ {
		if mask&1 != 0 {
			uc.sums.propose(uc.fn, idx, want)
		}
		mask >>= 1
	}
}

// isConst reports whether e is a compile-time constant (unit-less scale
// factor).
func (uc *unitChecker) isConst(e ast.Expr) bool {
	tv, ok := uc.p.info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// conversionFactors are the constant scale factors that CHANGE a value's
// unit rather than merely scaling it: degree<->radian and meter<->kilometer.
var conversionFactors = []float64{
	math.Pi / 180, 180 / math.Pi, 180, 1000,
}

// isConversionFactor reports whether e is a constant whose value (or
// reciprocal) is a known unit-conversion factor.
func (uc *unitChecker) isConversionFactor(e ast.Expr) bool {
	tv, ok := uc.p.info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	if !ok || v == 0 {
		return false
	}
	for _, f := range conversionFactors {
		for _, cand := range []float64{v, 1 / v, -v} {
			if math.Abs(cand-f) <= 1e-9*f {
				return true
			}
		}
	}
	return false
}

// isUnitConverter reports whether fn is geom.Rad or geom.Deg.
func isUnitConverter(fn *types.Func) bool {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/geom") {
		return false
	}
	return fn.Name() == "Rad" || fn.Name() == "Deg"
}

// knownUnitFields maps (import-path suffix, field name) to the documented
// unit of fields the orbit math relies on.
var knownUnitFields = map[[2]string]unit{
	{"internal/orbit", "Inclination"}:   unitRad,
	{"internal/orbit", "RAAN"}:          unitRad,
	{"internal/orbit", "ArgPerigee"}:    unitRad,
	{"internal/orbit", "MeanAnomaly"}:   unitRad,
	{"internal/orbit", "SemiMajorAxis"}: unitMeters,
	{"internal/geom", "Lat"}:            unitRad,
	{"internal/geom", "Lon"}:            unitRad,
	{"internal/geom", "Alt"}:            unitMeters,
	{"internal/geom", "Elevation"}:      unitRad,
	{"internal/geom", "Azimuth"}:        unitRad,
}

// fieldUnit returns the unit a struct field carries, by table or by name
// suffix.
func fieldUnit(field *types.Var) unit {
	if field.Pkg() != nil {
		path := field.Pkg().Path()
		for key, u := range knownUnitFields {
			if strings.HasSuffix(path, key[0]) && field.Name() == key[1] {
				return u
			}
		}
	}
	return suffixUnit(field.Name())
}

// suffixUnit maps conventional identifier suffixes to units. Lower-case
// whole names ("deg", "km") count; embedded fragments do not, so "spread"
// or "gradient" never taint.
func suffixUnit(name string) unit {
	switch {
	case strings.HasSuffix(name, "Deg") || name == "deg" || name == "degrees":
		return unitDeg
	case strings.HasSuffix(name, "Rad") || name == "rad" || name == "radians":
		return unitRad
	case strings.HasSuffix(name, "Km") || name == "km":
		return unitKm
	}
	return unitNone
}

// constUnit returns the unit of known package-level constants.
func constUnit(c *types.Const) unit {
	if c.Pkg() != nil && strings.HasSuffix(c.Pkg().Path(), "internal/geom") && c.Name() == "EarthRadius" {
		return unitMeters
	}
	return unitNone
}
