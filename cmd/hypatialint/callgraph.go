package main

// Module-local call graph over every loaded package (lint targets plus the
// dependencies the loader pulled in). Nodes are declared functions/methods
// (*types.Func) and function literals (*ast.FuncLit); edges are statically
// resolved calls, with go-statement launches marked separately so the
// locksafety check can split the program into "event loop side" and
// "goroutine side".
//
// Dynamic calls (through function values, interface methods, or unresolved
// selectors) produce no edge; the affected checks treat their absence
// conservatively where it matters and document the gap otherwise.

import (
	"go/ast"
	"go/types"
)

// cgKey identifies a call-graph node: *types.Func or *ast.FuncLit.
type cgKey any

type cgEdge struct {
	callee cgKey
	viaGo  bool // edge created by a go statement
}

type callGraph struct {
	edges  map[cgKey][]cgEdge
	body   map[cgKey]*ast.BlockStmt
	pkgOf  map[cgKey]*pkg
	declOf map[*types.Func]*ast.FuncDecl
	// funcsIn lists the nodes declared in each package, in file order
	// (declarations first, literals in encounter order).
	funcsIn map[*pkg][]cgKey
	// normalCallers counts non-go in-edges, used to tell pure goroutine
	// bodies (only ever launched, never called) from ordinary functions.
	normalCallers map[cgKey]int
}

// buildCallGraph constructs the graph over the given packages.
func buildCallGraph(pkgs []*pkg) *callGraph {
	cg := &callGraph{
		edges:         map[cgKey][]cgEdge{},
		body:          map[cgKey]*ast.BlockStmt{},
		pkgOf:         map[cgKey]*pkg{},
		declOf:        map[*types.Func]*ast.FuncDecl{},
		funcsIn:       map[*pkg][]cgKey{},
		normalCallers: map[cgKey]int{},
	}
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.body[fn] = fd.Body
				cg.pkgOf[fn] = p
				cg.declOf[fn] = fd
				cg.funcsIn[p] = append(cg.funcsIn[p], fn)
			}
		}
	}
	// Scan bodies after registration so intra-module edges resolve to
	// registered nodes regardless of declaration order.
	for _, p := range pkgs {
		for _, key := range append([]cgKey(nil), cg.funcsIn[p]...) {
			if fn, ok := key.(*types.Func); ok {
				cg.scanBody(p, key, cg.declOf[fn].Body)
			}
		}
	}
	return cg
}

// scanBody records the outgoing edges of one function and registers (and
// recursively scans) the literals it contains.
func (cg *callGraph) scanBody(p *pkg, cur cgKey, body *ast.BlockStmt) {
	goLits := map[*ast.FuncLit]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			cg.body[n] = n.Body
			cg.pkgOf[n] = p
			cg.funcsIn[p] = append(cg.funcsIn[p], n)
			cg.addEdge(cur, n, goLits[n])
			cg.scanBody(p, n, n.Body)
			return false
		case *ast.GoStmt:
			goCalls[n.Call] = true
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				goLits[lit] = true
			} else if callee := resolveCallee(p.info, n.Call); callee != nil {
				cg.addEdge(cur, callee, true)
			}
		case *ast.CallExpr:
			if goCalls[n] {
				return true
			}
			if callee := resolveCallee(p.info, n); callee != nil {
				cg.addEdge(cur, callee, false)
			}
		}
		return true
	})
}

func (cg *callGraph) addEdge(from cgKey, to cgKey, viaGo bool) {
	cg.edges[from] = append(cg.edges[from], cgEdge{callee: to, viaGo: viaGo})
	if !viaGo {
		cg.normalCallers[to]++
	}
}

// resolveCallee statically resolves a call's target function, or nil for
// dynamic calls, conversions, and builtins.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// reach returns every node reachable from roots. When followGo is true the
// traversal crosses go-statement edges (the goroutine side is closed under
// both launching and calling); when false it follows plain calls only (the
// event-loop side never enters a goroutine body by calling it).
func (cg *callGraph) reach(roots []cgKey, followGo bool) map[cgKey]bool {
	seen := map[cgKey]bool{}
	stack := append([]cgKey(nil), roots...)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if k == nil || seen[k] {
			continue
		}
		seen[k] = true
		for _, e := range cg.edges[k] {
			if e.viaGo && !followGo {
				continue
			}
			if !seen[e.callee] {
				stack = append(stack, e.callee)
			}
		}
	}
	return seen
}
